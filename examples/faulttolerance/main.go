// Faulttolerance demonstrates the fault-injection subsystem: a job flow
// scheduled across two domains while nodes crash (losing their reservation
// books), whole domains go dark, and running jobs lose tasks mid-execution.
// Failed jobs climb the recovery ladder — bounded retry with exponential
// backoff in the same domain, then the remaining supporting levels, then
// cross-domain reallocation, then rejection — and the run's fault record
// is printed alongside the QoS outcome. The fault schedule is a pure
// function of the seed: re-running this program reprints the same trace.
package main

import (
	"fmt"

	"repro/internal/criticalworks"
	"repro/internal/faults"
	"repro/internal/metasched"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	cfg := workload.Default(7)
	cfg.DeadlineFactor = 1.8
	cfg.MeanInterarrival = 15
	gen := workload.New(cfg)
	env := gen.Environment(2)
	engine := sim.New()

	flow := gen.Flow(0, 40, 0)
	horizon := flow[len(flow)-1].At + 200

	fcfg := faults.Config{
		MTBF:             400, // ≈95% availability with MTTR 20
		MTTR:             20,
		DomainOutageProb: 0.15,
		TaskFailRate:     0.08,
		MaxRetries:       2,
		Until:            horizon,
		Seed:             7,
	}
	fmt.Printf("environment: %d nodes in %d domains, node availability ≈ %.0f%%\n",
		env.NumNodes(), len(env.Domains()), 100*fcfg.Availability())

	var tracer metasched.MemoryTracer
	vo := metasched.NewVO(engine, env, metasched.Config{
		Objective: criticalworks.MinCost,
		Seed:      7,
		Faults:    fcfg,
		Tracer:    &tracer,
	})
	for _, a := range flow {
		vo.Submit(a.Job, strategy.S2, a.At)
	}
	end := engine.Run()

	fmt.Printf("\nfault timeline (first 12 fault events of %d):\n",
		tracer.Count(metasched.EventNodeDown)+tracer.Count(metasched.EventTaskFailed)+
			tracer.Count(metasched.EventRetry))
	shown := 0
	for _, e := range tracer.Events() {
		switch e.Kind {
		case metasched.EventNodeDown:
			scope := fmt.Sprintf("node %d", e.Node)
			if e.Domain != "" {
				scope = "domain " + e.Domain
			}
			fmt.Printf("  t=%-5d %s down until t=%d\n", e.At, scope, e.End)
		case metasched.EventTaskFailed:
			fmt.Printf("  t=%-5d %s failed (%s)\n", e.At, e.Job, e.Detail)
		case metasched.EventRetry:
			fmt.Printf("  t=%-5d %s retry #%d, backoff until t=%d\n", e.At, e.Job, e.Level, e.Start)
		default:
			continue
		}
		if shown++; shown >= 12 {
			break
		}
	}

	completed, rejected, recovered := 0, 0, 0
	for _, r := range vo.Results() {
		if r.State == metasched.StateCompleted {
			completed++
			if r.TaskFailures > 0 {
				recovered++
			}
		} else {
			rejected++
		}
	}
	fmt.Printf("\nQoS after %d ticks: %d completed (%d despite failures), %d rejected\n",
		end, completed, recovered, rejected)
	fmt.Printf("fault record: %s\n", vo.FaultStats())

	fmt.Println("\nper-node downtime:")
	for _, n := range env.Nodes() {
		if d := n.Downtime(end); d > 0 {
			fmt.Printf("  %-8s %4d ticks across %d outages\n", n.Name, d, len(n.Outages()))
		}
	}
}
