// Customworkload shows the jobio wire format: a compound job authored as
// JSON (as cmd/jobgen emits, or as an external portal would submit), read
// back into the library and scheduled with the critical works method.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/criticalworks"
	"repro/internal/jobio"
)

const jobJSON = `[{
  "name": "render-farm",
  "deadline": 90,
  "tasks": [
    {"name": "ingest",    "baseTime": 2, "volume": 10},
    {"name": "frame-1",   "baseTime": 6, "volume": 60},
    {"name": "frame-2",   "baseTime": 6, "volume": 60},
    {"name": "frame-3",   "baseTime": 6, "volume": 60},
    {"name": "composite", "baseTime": 3, "volume": 30}
  ],
  "edges": [
    {"name": "d1", "from": "ingest",  "to": "frame-1",   "baseTime": 2, "volume": 20},
    {"name": "d2", "from": "ingest",  "to": "frame-2",   "baseTime": 2, "volume": 20},
    {"name": "d3", "from": "ingest",  "to": "frame-3",   "baseTime": 2, "volume": 20},
    {"name": "o1", "from": "frame-1", "to": "composite", "baseTime": 1, "volume": 10},
    {"name": "o2", "from": "frame-2", "to": "composite", "baseTime": 1, "volume": 10},
    {"name": "o3", "from": "frame-3", "to": "composite", "baseTime": 1, "volume": 10}
  ]
}]`

const envJSON = `[
  {"name": "gpu-1",  "performance": 1.0,  "price": 1.0,  "domain": "farm"},
  {"name": "gpu-2",  "performance": 0.8,  "price": 0.8,  "domain": "farm"},
  {"name": "cpu-1",  "performance": 0.5,  "price": 0.5,  "domain": "farm"},
  {"name": "cpu-2",  "performance": 0.33, "price": 0.33, "domain": "farm"},
  {"name": "spare",  "performance": 0.27, "price": 0.27, "domain": "farm"}
]`

func main() {
	jobs, err := jobio.ReadJobs(strings.NewReader(jobJSON))
	if err != nil {
		log.Fatal(err)
	}
	env, err := jobio.ReadEnvironment(strings.NewReader(envJSON))
	if err != nil {
		log.Fatal(err)
	}
	job := jobs[0]
	fmt.Printf("loaded %q: %d tasks, %d transfers, deadline %d, on %d nodes\n",
		job.Name, job.NumTasks(), job.NumEdges(), job.Deadline, env.NumNodes())

	sched, err := criticalworks.Build(env, criticalworks.EmptyCalendars(env), job,
		criticalworks.Options{Objective: criticalworks.MinCost})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: CF=%d, window [%d,%d), %d collisions\n",
		sched.BareCF, sched.Start, sched.Finish, len(sched.Collisions))
	for _, t := range job.Tasks() {
		p := sched.Placements[t.ID]
		fmt.Printf("  %-10s -> %-6s %v\n", t.Name, env.Node(p.Node).Name, p.Window)
	}
}
