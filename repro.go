// Package repro is a Go reproduction of V. Toporkov, "Application-Level
// and Job-Flow Scheduling: An Approach for Achieving Quality of Service in
// Distributed Computing" (PaCT 2009, LNCS 5698, pp. 350–359).
//
// The library implements the paper's full stack from scratch:
//
//   - compound jobs as DAGs of tasks and data transfers (internal/dag)
//     with the §3 user estimation tables (internal/estimate);
//   - a heterogeneous resource model with reservation calendars and the
//     paper's performance groups (internal/resource);
//   - the data policies distinguishing the strategy families: active
//     replication, remote access, static storage (internal/data);
//   - the VO economic model, CF = Σ ceil(V/T)·rate (internal/economy);
//   - the critical works method — the paper's core application-level
//     co-allocation algorithm with collision detection and economic
//     resolution (internal/criticalworks);
//   - strategies as sets of supporting schedules, families S1/S2/S3/MS1
//     (internal/strategy);
//   - the Fig. 1 hierarchy: metascheduler, domain job managers, dynamic
//     background load, supporting-schedule fallback and job reallocation
//     (internal/metasched);
//   - local batch systems: FCFS, LWF, EASY and conservative backfilling,
//     gang scheduling, advance reservations (internal/batch);
//   - a deterministic discrete-event engine (internal/sim), workload
//     generation per §4 (internal/workload), and one experiment runner
//     per paper figure (internal/experiments).
//
// This package re-exports the high-level API; see the examples/ directory
// for runnable walkthroughs and EXPERIMENTS.md for the paper-vs-measured
// record.
package repro

import (
	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/metasched"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// Job modeling.
type (
	// Job is a compound job: a DAG of tasks and data transfers with a
	// fixed completion time.
	Job = dag.Job
	// JobBuilder assembles jobs task by task.
	JobBuilder = dag.Builder
)

// NewJob starts building a compound job.
func NewJob(name string) *JobBuilder { return dag.NewBuilder(name) }

// Resource modeling.
type (
	// Node is one heterogeneous processor node.
	Node = resource.Node
	// Environment is the virtual organization's node set.
	Environment = resource.Environment
)

// NewNode creates a node; perf is relative performance in (0,1].
func NewNode(id int, name string, perf, price float64, domain string) *Node {
	return resource.NewNode(resource.NodeID(id), name, perf, price, domain)
}

// NewEnvironment wraps nodes with dense IDs 0..n-1.
func NewEnvironment(nodes []*Node) *Environment { return resource.NewEnvironment(nodes) }

// Scheduling.
type (
	// Schedule is one Distribution: a complete coordinated allocation.
	Schedule = criticalworks.Schedule
	// Strategy is a set of supporting schedules for one job.
	Strategy = strategy.Strategy
	// StrategyGenerator produces strategies against an environment.
	StrategyGenerator = strategy.Generator
	// StrategyType selects a §4 family.
	StrategyType = strategy.Type
)

// The §4 strategy families.
const (
	S1  = strategy.S1
	S2  = strategy.S2
	S3  = strategy.S3
	MS1 = strategy.MS1
)

// Calendars is the mutable scheduling view: one reservation calendar per
// node.
type Calendars = criticalworks.Calendars

// EmptyCalendars returns a fresh view for every node in env.
func EmptyCalendars(env *Environment) Calendars { return criticalworks.EmptyCalendars(env) }

// SnapshotCalendars clones the live calendars of every node in env.
func SnapshotCalendars(env *Environment) Calendars { return criticalworks.Snapshot(env) }

// BuildSchedule runs the critical works method for one job on empty
// calendars — the simplest entry point; use StrategyGenerator for the full
// strategy machinery.
func BuildSchedule(env *Environment, job *Job) (*Schedule, error) {
	return criticalworks.Build(env, EmptyCalendars(env), job, criticalworks.Options{})
}

// Job-flow level.
type (
	// VO is the full Fig. 1 hierarchy over a sim engine.
	VO = metasched.VO
	// VOConfig tunes the virtual organization.
	VOConfig = metasched.Config
	// JobResult records one job's passage through the VO.
	JobResult = metasched.JobResult
	// Engine is the deterministic discrete-event clock.
	Engine = sim.Engine
)

// NewEngine returns a simulation engine at time 0.
func NewEngine() *Engine { return sim.New() }

// NewVO builds the metascheduler hierarchy over env.
func NewVO(engine *Engine, env *Environment, cfg VOConfig) *VO {
	return metasched.NewVO(engine, env, cfg)
}

// Workloads and experiments.
type (
	// WorkloadConfig parameterizes §4 synthetic generation.
	WorkloadConfig = workload.Config
	// WorkloadGenerator emits environments, jobs and flows.
	WorkloadGenerator = workload.Generator
	// Report is one experiment's printable and machine-readable outcome.
	Report = experiments.Report
)

// DefaultWorkload returns the §4 generation parameters.
func DefaultWorkload(seed uint64) WorkloadConfig { return workload.Default(seed) }

// NewWorkload creates a generator.
func NewWorkload(cfg WorkloadConfig) *WorkloadGenerator { return workload.New(cfg) }
