// Dense-calendar and outage-repair benchmarks (see DESIGN.md §14). The
// CI bench-regression job runs each benchmark twice — baseline vs
// accelerated, selected by the flags below — and gates ≥2× speedups via
// cmd/benchcheck, appending all three comparison records to
// BENCH_calendar.json:
//
//	BenchmarkDenseCalendarFirstFree      -linear-calendar=true  vs  false
//	BenchmarkDenseCalendarConflictsWith  -linear-calendar=true  vs  false
//	BenchmarkOutageRepair                -repair=false          vs  true
package repro

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/data"
	"repro/internal/resource"
	"repro/internal/simtime"
)

// benchLinearCalendar routes the dense-calendar benchmarks through the
// linear reference scans below instead of the indexed Calendar methods;
// the CI comparison baseline, mirroring the pre-index implementation.
var benchLinearCalendar = flag.Bool("linear-calendar", false, "answer the dense-calendar benchmark queries with linear scans (CI baseline) instead of the indexed methods")

// benchRepair toggles the outage benchmark between incremental repair
// (the default) and the full critical-works rebuild baseline.
var benchRepair = flag.Bool("repair", true, "serve the outage benchmark via incremental strategy repair; false runs the full-rebuild baseline")

// denseBook builds a book of n reservations [10i, 10i+7) — every gap 3
// ticks wide — with one length-50 hole before the final reservation, so
// a FirstFree probe for anything wider than 3 must reach the far end of
// the book: the linear walk's worst case, one max-gap-tree descent for
// the index.
func denseBook(n int) *resource.Calendar {
	c := resource.NewCalendar()
	hole := simtime.Time((n - 1) * 10)
	for i := 0; i < n; i++ {
		start := simtime.Time(i * 10)
		if start >= hole {
			start += 50
		}
		iv := simtime.Interval{Start: start, End: start + 7}
		if err := c.Reserve(iv, resource.External); err != nil {
			panic(err)
		}
	}
	return c
}

// linearFirstFree is the pre-index FirstFree: skip reservations ending by
// the cursor, stop at the first gap of `length` ticks.
func linearFirstFree(res []resource.Reservation, earliest, length, horizon simtime.Time) (simtime.Time, bool) {
	if length <= 0 || earliest >= horizon {
		return 0, false
	}
	t := earliest
	for _, r := range res {
		if r.Interval.End <= t {
			continue
		}
		if r.Interval.Start >= t+length {
			break
		}
		t = r.Interval.End
	}
	if t+length <= horizon {
		return t, true
	}
	return 0, false
}

// linearConflictsWith is the pre-index ConflictsWith: a full walk of the
// book collecting overlaps.
func linearConflictsWith(res []resource.Reservation, iv simtime.Interval) []resource.Reservation {
	if iv.Empty() {
		return nil
	}
	var out []resource.Reservation
	for _, r := range res {
		if r.Interval.Overlaps(iv) {
			out = append(out, r)
		}
	}
	return out
}

const denseBookSize = 12_000

// BenchmarkDenseCalendarFirstFree probes a 12k-reservation book for a
// window wider than every regular gap, from a rotating set of origins.
// The answer is always the engineered hole near the end of the book.
func BenchmarkDenseCalendarFirstFree(b *testing.B) {
	c := denseBook(denseBookSize)
	res := c.Reservations()
	horizon := simtime.Time(denseBookSize*10 + 1000)
	c.FirstFree(0, 20, horizon) // build the lazy index outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		earliest := simtime.Time((i % 64) * 100)
		var ok bool
		if *benchLinearCalendar {
			_, ok = linearFirstFree(res, earliest, 20, horizon)
		} else {
			_, ok = c.FirstFree(earliest, 20, horizon)
		}
		if !ok {
			b.Fatal("no window found in the dense book")
		}
	}
}

// BenchmarkDenseCalendarConflictsWith queries short windows across the
// same 12k-reservation book; each overlaps at most two reservations, so
// the indexed run is a binary search plus a two-element copy while the
// baseline walks all 12k entries.
func BenchmarkDenseCalendarConflictsWith(b *testing.B) {
	c := denseBook(denseBookSize)
	res := c.Reservations()
	c.BusyIn(simtime.Interval{Start: 0, End: 100}) // build the lazy index outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := simtime.Time(((i*5261)%denseBookSize)*10 + 5)
		iv := simtime.Interval{Start: at, End: at + 10}
		var got []resource.Reservation
		if *benchLinearCalendar {
			got = linearConflictsWith(res, iv)
		} else {
			got = c.ConflictsWith(iv)
		}
		if len(got) == 0 {
			b.Fatal("query window missed every reservation")
		}
	}
}

// outageFixture is the single-node-outage scenario: a job of eight
// independent three-task chains memo-built over ten nodes, then one node
// that only the last-placed chain touched drops out of the candidate
// set. Incremental repair replays the seven untouched chains from the
// memo and re-solves only the last; the baseline rebuilds all eight.
type outageFixture struct {
	env       *resource.Environment
	job       *dag.Job
	memo      *criticalworks.BuildMemo
	live      criticalworks.Calendars
	survivors []resource.NodeID
}

func newOutageFixture(b *testing.B) *outageFixture {
	bl := dag.NewBuilder("outage").Deadline(600)
	chains := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for _, c := range chains {
		bl.Task(c+"1", 2, 20)
		bl.Task(c+"2", 2, 20)
		bl.Task(c+"3", 2, 20)
		bl.Edge(c+"e1", c+"1", c+"2", 1, 5)
		bl.Edge(c+"e2", c+"2", c+"3", 1, 5)
	}
	job := bl.MustBuild()
	nodes := make([]*resource.Node, 10)
	for i := range nodes {
		nodes[i] = resource.NewNode(resource.NodeID(i), fmt.Sprintf("n%d", i), 1.0, 1, "d")
	}
	env := resource.NewEnvironment(nodes)
	live := criticalworks.EmptyCalendars(env)

	opt := criticalworks.Options{CaptureMemo: true, Catalog: data.NewCatalog(data.RemoteAccess, 0)}
	s, err := criticalworks.Build(env, cloneBooks(live), job, opt)
	if err != nil {
		b.Fatalf("memoized build: %v", err)
	}
	memo := s.Memo()
	if memo == nil {
		b.Fatal("build finished above margin 1: no memo")
	}

	// Pick a node first touched by the last chain, so the repair resumes
	// at the deepest possible splice point.
	target := resource.NodeID(0)
	found := false
	last := len(memo.Chains) - 1
scan:
	for _, n := range memo.Chains[last].Touched {
		for j := 0; j < last; j++ {
			for _, m := range memo.Chains[j].Touched {
				if m == n {
					continue scan
				}
			}
		}
		target, found = n, true
		break
	}
	if !found {
		b.Fatal("last chain shares every node with earlier chains; restructure the fixture")
	}
	var survivors []resource.NodeID
	for _, id := range memo.Candidates {
		if id != target {
			survivors = append(survivors, id)
		}
	}
	return &outageFixture{env: env, job: job, memo: memo, live: live, survivors: survivors}
}

func cloneBooks(cals criticalworks.Calendars) criticalworks.Calendars {
	out := make(criticalworks.Calendars, len(cals))
	for id, c := range cals {
		out[id] = c.Clone()
	}
	return out
}

// BenchmarkOutageRepair re-anchors the fixture's job after the outage,
// once per iteration. At -repair=true the memo splices (seven chains
// replayed, one re-solved); at -repair=false every iteration runs the
// full critical-works build over the surviving candidates. Both sides
// pay the same snapshot-clone cost.
func BenchmarkOutageRepair(b *testing.B) {
	fx := newOutageFixture(b)
	gens := func(id resource.NodeID) uint64 { return fx.live[id].Gen() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := criticalworks.Options{
			Candidates: fx.survivors,
			Catalog:    data.NewCatalog(data.RemoteAccess, 0),
		}
		if *benchRepair {
			s, out := criticalworks.TryRepair(fx.env, fx.job, opt, fx.memo,
				gens, func() criticalworks.Calendars { return cloneBooks(fx.live) })
			if out != criticalworks.RepairSpliced || s == nil {
				b.Fatalf("repair outcome = %v, want a splice", out)
			}
		} else {
			s, err := criticalworks.Build(fx.env, cloneBooks(fx.live), fx.job, opt)
			if err != nil {
				b.Fatalf("full rebuild: %v", err)
			}
			if s.Partial {
				b.Fatal("full rebuild went partial")
			}
		}
	}
}
