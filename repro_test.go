package repro_test

import (
	"testing"

	"repro"
	"repro/internal/strategy"
)

// TestFacadeEndToEnd exercises the public API the README's quickstart
// shows: job building, environment construction, one-shot scheduling, and
// the full VO.
func TestFacadeEndToEnd(t *testing.T) {
	b := repro.NewJob("facade").Deadline(60)
	b.Task("prep", 3, 30)
	b.Task("analyze", 5, 50)
	b.Edge("d", "prep", "analyze", 2, 10)
	job := b.MustBuild()

	env := repro.NewEnvironment([]*repro.Node{
		repro.NewNode(0, "fast", 1.0, 1.0, "site"),
		repro.NewNode(1, "slow", 0.33, 0.33, "site"),
	})

	sched, err := repro.BuildSchedule(env, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Placements) != 2 || !sched.MeetsDeadline() {
		t.Fatalf("schedule = %+v", sched)
	}
	if sched.BareCF <= 0 {
		t.Error("no cost computed")
	}
}

func TestFacadeStrategyGenerator(t *testing.T) {
	gen := repro.NewWorkload(repro.DefaultWorkload(1))
	env := gen.Environment(1)
	job := gen.Job(0)

	sg := &repro.StrategyGenerator{Env: env}
	st, err := sg.Generate(job, repro.S1, repro.EmptyCalendars(env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Distributions)+len(st.FailedLevels) != 4 {
		t.Errorf("levels accounted = %d", len(st.Distributions)+len(st.FailedLevels))
	}
	if st.Admissible() {
		if d := st.CheapestAdmissible(); d == nil {
			t.Error("admissible strategy with no pick")
		}
	}
}

func TestFacadeVO(t *testing.T) {
	gen := repro.NewWorkload(repro.DefaultWorkload(2))
	env := gen.Environment(2)
	engine := repro.NewEngine()
	vo := repro.NewVO(engine, env, repro.VOConfig{Seed: 2})
	for _, a := range gen.Flow(0, 10, 0) {
		vo.Submit(a.Job, repro.S2, a.At)
	}
	engine.Run()
	if len(vo.Results()) != 10 {
		t.Fatalf("results = %d", len(vo.Results()))
	}
}

func TestFacadeConstantsMatch(t *testing.T) {
	if repro.S1 != strategy.S1 || repro.MS1 != strategy.MS1 {
		t.Error("facade constants diverge")
	}
	if repro.Version == "" {
		t.Error("empty version")
	}
}
