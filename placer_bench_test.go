// Concurrent-placement benchmarks (see DESIGN.md §12). The CI
// bench-regression job runs BenchmarkConcurrentPlacement at -placers=1
// and -placers=4 and gates on a ≥1.5× speedup via cmd/benchcheck; the
// sweep is informational.
package repro

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/simtime"
	"repro/internal/workload"
)

// benchPlacers sizes the optimistic-placer pool; ≤1 forces the classic
// single-writer placement loop, which is the CI comparison baseline.
var benchPlacers = flag.Int("placers", 1, "optimistic placer pool size for the placement benchmarks (≤1 = single-writer)")

// placementRun drives one VO through `batches` arrival batches of `width`
// jobs each: every batch shares a tick, so at placers>1 the whole batch
// goes through snapshot → parallel build → ordered optimistic commit,
// while at placers≤1 each job takes the sequential arrive path. Generous
// deadlines keep the corpus admissible, so the measured work is strategy
// building and commit arbitration, not rejection handling.
func placementRun(b *testing.B, placers, domains, batches, width int) {
	b.Helper()
	cfg := workload.Default(11)
	cfg.DeadlineFactor *= 4
	gen := workload.New(cfg)
	env := gen.Environment(domains)
	engine := NewEngine()
	vo := NewVO(engine, env, VOConfig{Seed: 11, Placers: placers})
	jobs := batches * width
	for i := 0; i < jobs; i++ {
		at := simtime.Time(i/width) * 400
		j := gen.Job(i)
		j = j.WithDeadline(at + j.Deadline)
		if err := vo.SubmitPrio(j, S1, at, i%3); err != nil {
			b.Fatal(err)
		}
	}
	engine.Run()
	if got := len(vo.Results()); got != jobs {
		b.Fatalf("results = %d, want %d", got, jobs)
	}
}

// BenchmarkConcurrentPlacement is the CI-gated workload: 48 jobs per
// iteration in shared-tick batches of 8 over 4 domains. Batch width 8
// keeps commit conflicts (and hence serial retry rebuilds) rare while
// giving the parallel build two jobs per placer; ns/op at -placers=4
// must beat -placers=1 (benchcheck, -min-speedup 1.5).
func BenchmarkConcurrentPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		placementRun(b, *benchPlacers, 4, 3, 8)
	}
}

// BenchmarkPlacementSweep maps the speedup surface: placer pool size ×
// domain fan-in, at fixed batch width 8. Not CI-gated.
func BenchmarkPlacementSweep(b *testing.B) {
	for _, placers := range []int{1, 2, 4, 8} {
		for _, domains := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("placers=%d/domains=%d", placers, domains), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					placementRun(b, placers, domains, 3, 8)
				}
			})
		}
	}
}
