// Benchmarks: one per paper artifact (see DESIGN.md §4's experiment
// index), plus micro-benchmarks of the hot substrates. The experiment
// benchmarks run reduced corpora and report the headline metric of their
// figure via b.ReportMetric, so `go test -bench=. -benchmem` regenerates a
// compact form of every table and figure.
package repro

import (
	"flag"
	"testing"

	"repro/internal/baseline"
	"repro/internal/criticalworks"
	"repro/internal/experiments"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// benchWorkers sizes the worker pool inside the experiment benchmarks;
// 1 forces the sequential path, <1 means one worker per CPU. The CI
// bench-regression job runs the suite at both settings and compares.
var benchWorkers = flag.Int("workers", 1, "worker pool size for the experiment benchmarks (1 = sequential)")

// benchFig3 is DefaultFig3 with the -workers flag applied.
func benchFig3(seed uint64, jobs int) experiments.Fig3Config {
	cfg := experiments.DefaultFig3(seed, jobs)
	cfg.Workers = *benchWorkers
	return cfg
}

// benchFig4 is DefaultFig4 with the -workers flag applied.
func benchFig4(seed uint64, jobs int) experiments.Fig4Config {
	cfg := experiments.DefaultFig4(seed, jobs)
	cfg.Workers = *benchWorkers
	return cfg
}

// BenchmarkFig2Strategy regenerates the §3 worked example (E1).
func BenchmarkFig2Strategy(b *testing.B) {
	var cheapest float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2With(*benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		cheapest = r.Value("cheapest-cf")
	}
	b.ReportMetric(cheapest, "cheapest-CF")
}

// BenchmarkFig3aAdmissibility regenerates Fig. 3(a) on a reduced corpus
// (E2). Paper: S1 38%, S2 37%, S3 33%.
func BenchmarkFig3aAdmissibility(b *testing.B) {
	var s1, s2, s3 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3a(benchFig3(1, 60))
		if err != nil {
			b.Fatal(err)
		}
		s1, s2, s3 = r.Value("admissible-S1"), r.Value("admissible-S2"), r.Value("admissible-S3")
	}
	b.ReportMetric(100*s1, "S1-adm-%")
	b.ReportMetric(100*s2, "S2-adm-%")
	b.ReportMetric(100*s3, "S3-adm-%")
}

// BenchmarkFig3bCollisions regenerates Fig. 3(b) on a reduced corpus (E3).
// Paper fast-node shares: S1 32%, S2 56%, S3 74%.
func BenchmarkFig3bCollisions(b *testing.B) {
	var f1, f2, f3 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3b(benchFig3(1, 60))
		if err != nil {
			b.Fatal(err)
		}
		f1, f2, f3 = r.Value("fast-S1"), r.Value("fast-S2"), r.Value("fast-S3")
	}
	b.ReportMetric(100*f1, "S1-fast-%")
	b.ReportMetric(100*f2, "S2-fast-%")
	b.ReportMetric(100*f3, "S3-fast-%")
}

// BenchmarkFig4aLoad regenerates Fig. 4(a) on a reduced flow (E4).
func BenchmarkFig4aLoad(b *testing.B) {
	var s1slow, s3fast float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4a(benchFig4(1, 60))
		if err != nil {
			b.Fatal(err)
		}
		s1slow, s3fast = r.Value("slow-S1"), r.Value("fast-S3")
	}
	b.ReportMetric(100*s1slow, "S1-slow-load-%")
	b.ReportMetric(100*s3fast, "S3-fast-load-%")
}

// BenchmarkFig4bCostTime regenerates Fig. 4(b) on a reduced flow (E5).
func BenchmarkFig4bCostTime(b *testing.B) {
	var costS3, taskS3 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4b(benchFig4(1, 60))
		if err != nil {
			b.Fatal(err)
		}
		costS3, taskS3 = r.Value("cost-S3"), r.Value("task-S3")
	}
	b.ReportMetric(costS3, "S3-rel-cost")
	b.ReportMetric(taskS3, "S3-rel-task")
}

// BenchmarkFig4cTTL regenerates Fig. 4(c) on a reduced flow (E6).
func BenchmarkFig4cTTL(b *testing.B) {
	var ttlS3, devMS1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4c(benchFig4(1, 60))
		if err != nil {
			b.Fatal(err)
		}
		ttlS3, devMS1 = r.Value("ttl-S3"), r.Value("dev-MS1")
	}
	b.ReportMetric(ttlS3, "S3-rel-ttl")
	b.ReportMetric(devMS1, "MS1-rel-dev")
}

// BenchmarkPolicyWaitTimes regenerates the §5 policy comparison (E7).
func BenchmarkPolicyWaitTimes(b *testing.B) {
	var fcfs, easy, res float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Policies(experiments.DefaultPolicies(1, 250))
		if err != nil {
			b.Fatal(err)
		}
		fcfs, easy, res = r.Value("wait-FCFS"), r.Value("wait-FCFS+easy-backfill"), r.Value("wait-FCFS+reservations")
	}
	b.ReportMetric(fcfs, "FCFS-wait")
	b.ReportMetric(easy, "easy-wait")
	b.ReportMetric(res, "reserved-wait")
}

// BenchmarkAblationCollision regenerates the E8 ablation.
func BenchmarkAblationCollision(b *testing.B) {
	var realloc, delay float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCollision(benchFig3(1, 40))
		if err != nil {
			b.Fatal(err)
		}
		realloc = r.Value("admissible-economic-reallocation")
		delay = r.Value("admissible-pinned-node-delay")
	}
	b.ReportMetric(100*realloc, "realloc-adm-%")
	b.ReportMetric(100*delay, "delay-adm-%")
}

// BenchmarkAblationLevels regenerates the E9 ablation.
func BenchmarkAblationLevels(b *testing.B) {
	var s1, ms1 float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAblationLevels(1, 40)
		cfg.Workers = *benchWorkers
		r, err := experiments.AblationLevels(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s1, ms1 = r.Value("evaluations-S1"), r.Value("evaluations-MS1")
	}
	b.ReportMetric(ms1/s1, "MS1/S1-evals")
}

// BenchmarkComparison regenerates the E10 scheduler comparison.
func BenchmarkComparison(b *testing.B) {
	var cwCost, mmCost float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Comparison(benchFig3(1, 40))
		if err != nil {
			b.Fatal(err)
		}
		cwCost, mmCost = r.Value("cf-critical-works-mincost"), r.Value("cf-min-min")
	}
	b.ReportMetric(cwCost/mmCost, "mincost/min-min-CF")
}

// BenchmarkBaselineMinMin measures one min-min run on a mid-size job.
func BenchmarkBaselineMinMin(b *testing.B) {
	gen := workload.New(workload.Default(3))
	env := gen.Environment(1)
	job := gen.Job(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cals := criticalworks.EmptyCalendars(env)
		if _, err := baseline.Build(env, cals, job, baseline.MinMin, baseline.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalPassing regenerates the E11 reservation-vs-queueing study.
func BenchmarkLocalPassing(b *testing.B) {
	var queued float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.LocalPassing(benchFig4(1, 60))
		if err != nil {
			b.Fatal(err)
		}
		queued = r.Value("met-queued")
	}
	b.ReportMetric(100*queued, "queued-met-%")
}

// BenchmarkCriticalWorksBuild measures one full critical-works run on a
// mid-size job over a 25-node environment.
func BenchmarkCriticalWorksBuild(b *testing.B) {
	gen := workload.New(workload.Default(3))
	env := gen.Environment(1)
	job := gen.Job(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cals := criticalworks.EmptyCalendars(env)
		if _, err := criticalworks.Build(env, cals, job, criticalworks.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalendarReserve measures reservation book operations.
func BenchmarkCalendarReserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := resource.NewCalendar()
		for k := simtime.Time(0); k < 200; k++ {
			if err := c.Reserve(simtime.Interval{Start: 10 * k, End: 10*k + 8}, resource.Owner{Job: "j"}); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := c.FirstFree(0, 3, 10000); !ok {
			b.Fatal("no slot")
		}
	}
}

// BenchmarkDESEngine measures raw event throughput.
func BenchmarkDESEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.New()
		var count int
		for k := 0; k < 1000; k++ {
			k := k
			e.At(simtime.Time(k), "ev", func() { count++ })
		}
		e.Run()
		if count != 1000 {
			b.Fatal("lost events")
		}
	}
}

// BenchmarkWorkloadGeneration measures §4 corpus generation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	gen := workload.New(workload.Default(5))
	for i := 0; i < b.N; i++ {
		job := gen.Job(i % 1000)
		if job.NumTasks() == 0 {
			b.Fatal("empty job")
		}
	}
}

// BenchmarkVOThroughput measures the full hierarchy end to end.
func BenchmarkVOThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := workload.Default(7)
		cfg.DeadlineFactor = 1.8
		gen := workload.New(cfg)
		env := gen.Environment(2)
		engine := sim.New()
		vo := NewVO(engine, env, VOConfig{Seed: 7})
		for _, a := range gen.Flow(0, 30, 0) {
			vo.Submit(a.Job, S1, a.At)
		}
		engine.Run()
		if len(vo.Results()) != 30 {
			b.Fatalf("results = %d", len(vo.Results()))
		}
	}
}
