// Command benchcheck compares a sequential and a parallel run of the
// Fig. 3 corpus benchmark and fails when parallelism stopped paying for
// itself. The CI bench-regression job runs the benchmark twice —
// `-args -workers=1` and `-args -workers=N` — feeds both outputs here,
// and archives the resulting BENCH_parallel.json.
//
// Usage:
//
//	benchcheck -seq seq.txt -par par.txt [-bench BenchmarkFig3aAdmissibility] [-out BENCH_parallel.json] [-min-speedup 1.0]
//
// Each input is the plain `go test -bench` output. When a benchmark was
// run with -count > 1 the best (minimum) ns/op is used for both sides, so
// scheduler noise on small CI runners cannot fail the gate spuriously.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is the record written to the JSON artifact.
type result struct {
	Benchmark    string  `json:"benchmark"`
	SequentialNs float64 `json:"sequential_ns"`
	ParallelNs   float64 `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	MinSpeedup   float64 `json:"min_speedup"`
	Pass         bool    `json:"pass"`
}

func main() {
	var (
		seqPath    = flag.String("seq", "", "benchmark output of the sequential (-workers=1) run")
		parPath    = flag.String("par", "", "benchmark output of the parallel run")
		bench      = flag.String("bench", "BenchmarkFig3aAdmissibility", "benchmark name to compare")
		outPath    = flag.String("out", "BENCH_parallel.json", "where to write the comparison record")
		minSpeedup = flag.Float64("min-speedup", 1.0, "fail unless sequential_ns/parallel_ns exceeds this")
		appendOut  = flag.Bool("append", false, "write -out as a JSON array, appending to existing records (replacing any for the same benchmark); used when several gates share one artifact")
	)
	flag.Parse()
	if *seqPath == "" || *parPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -seq and -par are required")
		os.Exit(2)
	}

	r, err := compare(*seqPath, *parPath, *bench, *minSpeedup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	write := writeResult
	if *appendOut {
		write = appendResult
	}
	if err := write(*outPath, r); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("%s: sequential %.0f ns/op, parallel %.0f ns/op, speedup %.2fx (need > %.2fx)\n",
		r.Benchmark, r.SequentialNs, r.ParallelNs, r.Speedup, r.MinSpeedup)
	if !r.Pass {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL — the parallel run is not faster than the sequential one")
		os.Exit(1)
	}
}

// compare reads both benchmark outputs and builds the comparison record.
// The gate is strict: a speedup exactly equal to minSpeedup fails, so a
// default of 1.0 demands that parallelism actually pays.
func compare(seqPath, parPath, bench string, minSpeedup float64) (result, error) {
	seqNs, err := bestNsPerOp(seqPath, bench)
	if err != nil {
		return result{}, err
	}
	parNs, err := bestNsPerOp(parPath, bench)
	if err != nil {
		return result{}, err
	}
	r := result{
		Benchmark:    bench,
		SequentialNs: seqNs,
		ParallelNs:   parNs,
		Speedup:      seqNs / parNs,
		MinSpeedup:   minSpeedup,
	}
	r.Pass = r.Speedup > r.MinSpeedup
	return r, nil
}

// writeResult marshals the record to path (indented, trailing newline).
func writeResult(path string, r result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// appendResult maintains path as a JSON array of records: existing
// records are kept, except any earlier record for the same benchmark,
// which the new one replaces. A missing or empty file starts a new
// array, so a sequence of -append invocations (the calendar gate runs
// three) builds the combined artifact regardless of order.
func appendResult(path string, r result) error {
	var records []result
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("%s: existing artifact is not a record array: %v", path, err)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	out := records[:0]
	for _, old := range records {
		if old.Benchmark != r.Benchmark {
			out = append(out, old)
		}
	}
	out = append(out, r)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// bestNsPerOp scans `go test -bench` output for the named benchmark and
// returns the smallest ns/op across its lines (repeated runs via -count
// produce one line each).
func bestNsPerOp(path, bench string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	best := 0.0
	found := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Layout: BenchmarkName-P  iterations  value ns/op  [more metrics...]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if name != bench && !strings.HasPrefix(name, bench+"-") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("%s: bad ns/op value %q: %v", path, fields[i], err)
			}
			if !found || v < best {
				best = v
			}
			found = true
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("%s: no %s ns/op line found", path, bench)
	}
	return best, nil
}
