package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench drops a fake `go test -bench` output file and returns its path.
func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const seqOut = `goos: linux
goarch: amd64
pkg: repro/internal/sched
BenchmarkFig3aAdmissibility-8   	     100	   2000000 ns/op	  512 B/op	      12 allocs/op
BenchmarkFig3aAdmissibility-8   	     100	   1800000 ns/op	  512 B/op	      12 allocs/op
BenchmarkOther-8                	    1000	     50000 ns/op
PASS
`

const parOut = `BenchmarkFig3aAdmissibility-8   	     200	    900000 ns/op
BenchmarkFig3aAdmissibility-8   	     200	    950000 ns/op
PASS
`

func TestBestNsPerOp(t *testing.T) {
	seq := writeBench(t, "seq.txt", seqOut)
	got, err := bestNsPerOp(seq, "BenchmarkFig3aAdmissibility")
	if err != nil {
		t.Fatal(err)
	}
	// -count 2 produced two lines; the best (minimum) wins.
	if got != 1800000 {
		t.Errorf("bestNsPerOp = %v, want 1800000", got)
	}
	// An exact name (no -P suffix) must also match.
	bare := writeBench(t, "bare.txt", "BenchmarkFig3aAdmissibility 10 42 ns/op\n")
	if got, err := bestNsPerOp(bare, "BenchmarkFig3aAdmissibility"); err != nil || got != 42 {
		t.Errorf("bare name: got %v, %v", got, err)
	}
	// A benchmark whose name merely shares a prefix must not match.
	if _, err := bestNsPerOp(seq, "BenchmarkFig3"); err == nil {
		t.Error("prefix-only name matched")
	}
}

func TestBestNsPerOpErrors(t *testing.T) {
	if _, err := bestNsPerOp(filepath.Join(t.TempDir(), "missing.txt"), "X"); err == nil {
		t.Error("missing file succeeded")
	}
	empty := writeBench(t, "empty.txt", "PASS\n")
	if _, err := bestNsPerOp(empty, "BenchmarkFig3aAdmissibility"); err == nil || !strings.Contains(err.Error(), "no") {
		t.Errorf("missing benchmark: err = %v", err)
	}
	bad := writeBench(t, "bad.txt", "BenchmarkFig3aAdmissibility-8 100 oops ns/op\n")
	if _, err := bestNsPerOp(bad, "BenchmarkFig3aAdmissibility"); err == nil || !strings.Contains(err.Error(), "bad ns/op") {
		t.Errorf("malformed ns/op: err = %v", err)
	}
}

func TestCompare(t *testing.T) {
	seq := writeBench(t, "seq.txt", seqOut)
	par := writeBench(t, "par.txt", parOut)
	r, err := compare(seq, par, "BenchmarkFig3aAdmissibility", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SequentialNs != 1800000 || r.ParallelNs != 900000 {
		t.Errorf("ns: %+v", r)
	}
	if r.Speedup != 2.0 || !r.Pass {
		t.Errorf("speedup 2.0 at min 1.0 should pass: %+v", r)
	}
	// The boundary is strict: speedup == minSpeedup fails.
	r, err = compare(seq, par, "BenchmarkFig3aAdmissibility", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Errorf("speedup exactly at min must fail: %+v", r)
	}
	r, err = compare(seq, par, "BenchmarkFig3aAdmissibility", 1.99)
	if err != nil || !r.Pass {
		t.Errorf("speedup just above min must pass: %+v, %v", r, err)
	}
	// Errors from either side propagate.
	if _, err := compare(seq, par, "BenchmarkNope", 1.0); err == nil {
		t.Error("unknown benchmark compared")
	}
}

func TestWriteResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	in := result{Benchmark: "B", SequentialNs: 2, ParallelNs: 1, Speedup: 2, MinSpeedup: 1, Pass: true}
	if err := writeResult(path, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("artifact missing trailing newline")
	}
	var out result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
}

func TestAppendResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_calendar.json")

	// A missing file starts a fresh single-record array.
	a := result{Benchmark: "BenchmarkA", SequentialNs: 100, ParallelNs: 10, Speedup: 10, MinSpeedup: 2, Pass: true}
	if err := appendResult(path, a); err != nil {
		t.Fatal(err)
	}
	// A second benchmark appends; re-running the first replaces its
	// record in place instead of duplicating it.
	b := result{Benchmark: "BenchmarkB", SequentialNs: 60, ParallelNs: 20, Speedup: 3, MinSpeedup: 2, Pass: true}
	if err := appendResult(path, b); err != nil {
		t.Fatal(err)
	}
	a2 := a
	a2.Speedup = 12
	if err := appendResult(path, a2); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("artifact is not a record array: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2: %v", len(got), got)
	}
	if got[0] != b || got[1] != a2 {
		t.Errorf("records = %+v, want [%+v %+v]", got, b, a2)
	}

	// A corrupt artifact is an error, not a silent restart.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendResult(bad, a); err == nil {
		t.Error("appendResult accepted a corrupt artifact")
	}
}
