// Command jobgen emits the synthetic workloads of the §4 experiments as
// JSON — the random compound jobs (tasks, transfers, estimates, deadline)
// and the heterogeneous environment — in the jobio wire format, which the
// library can read back.
//
// Usage:
//
//	jobgen -n 5 -seed 1           # five jobs on stdout
//	jobgen -env -domains 3        # the node set instead
//	jobgen -n 3 -flow             # a flow with arrival times
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/jobio"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 1, "number of jobs")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		env     = flag.Bool("env", false, "emit the environment instead of jobs")
		flow    = flag.Bool("flow", false, "emit a flow (jobs with arrival times)")
		domains = flag.Int("domains", 1, "domain count for -env")
	)
	flag.Parse()

	gen := workload.New(workload.Default(*seed))

	switch {
	case *env:
		if err := jobio.WriteEnvironment(os.Stdout, gen.Environment(*domains)); err != nil {
			fatal(err)
		}
	case *flow:
		var jobs []jobio.Job
		for _, a := range gen.Flow(0, *n, 0) {
			wj := jobio.FromJob(a.Job)
			at := int64(a.At)
			wj.Arrival = &at
			jobs = append(jobs, wj)
		}
		if err := jobio.WriteJobs(os.Stdout, jobs); err != nil {
			fatal(err)
		}
	default:
		var jobs []jobio.Job
		for i := 0; i < *n; i++ {
			jobs = append(jobs, jobio.FromJob(gen.Job(i)))
		}
		if err := jobio.WriteJobs(os.Stdout, jobs); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "jobgen: %v\n", err)
	os.Exit(1)
}
