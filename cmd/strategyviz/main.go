// Command strategyviz renders a job's scheduling strategy as ASCII Gantt
// charts — one chart per supporting schedule, in the style of the paper's
// Fig. 2(b).
//
// Usage:
//
//	strategyviz                 # the paper's Fig. 2 example job
//	strategyviz -job 17 -type S3 -seed 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/criticalworks"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/resource"
	"repro/internal/simtime"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	var (
		jobIdx  = flag.Int("job", -1, "workload job index; -1 renders the paper's Fig. 2 example")
		typName = flag.String("type", "S2", "strategy family: S1, S2, S3, MS1")
		seed    = flag.Uint64("seed", 1, "workload seed for -job")
		dot     = flag.Bool("dot", false, "emit the job graph as Graphviz DOT instead of Gantt charts")
	)
	flag.Parse()

	typ, ok := parseType(*typName)
	if !ok {
		fmt.Fprintf(os.Stderr, "strategyviz: unknown strategy type %q\n", *typName)
		os.Exit(2)
	}

	var job *dag.Job
	var env *resource.Environment
	if *jobIdx < 0 {
		job = experiments.Fig2Job().WithDeadline(24)
		env = experiments.Fig2Env()
	} else {
		gen := workload.New(workload.Default(*seed))
		job = gen.Job(*jobIdx)
		env = gen.Environment(1)
	}

	if *dot {
		if err := job.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "strategyviz: %v\n", err)
			os.Exit(1)
		}
		return
	}

	gen := &strategy.Generator{Env: env}
	st, err := gen.Generate(job, typ, criticalworks.EmptyCalendars(env), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strategyviz: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("job %s: %d tasks, %d transfers, deadline %d, strategy %s\n",
		job.Name, job.NumTasks(), job.NumEdges(), job.Deadline, typ)
	if len(st.FailedLevels) > 0 {
		fmt.Printf("infeasible levels: %v\n", st.FailedLevels)
	}
	for _, d := range st.Distributions {
		fmt.Printf("\nDistribution (level %d): CF=%d cost=%.1f finish=%d admissible=%v\n",
			d.Level, d.BareCF, d.Cost, d.Finish, d.Admissible)
		renderGantt(os.Stdout, env, st.Scheduled, d)
	}
}

func parseType(s string) (strategy.Type, bool) {
	for _, t := range strategy.AllTypes {
		if strings.EqualFold(t.String(), s) {
			return t, true
		}
	}
	return 0, false
}

// renderGantt prints one row per node that hosts a task, with task names
// written into their reservation windows.
func renderGantt(w *os.File, env *resource.Environment, job *dag.Job, d strategy.Distribution) {
	span := d.Finish
	if span <= 0 {
		return
	}
	const maxCols = 96
	scale := 1.0
	if span > maxCols {
		scale = float64(maxCols) / float64(span)
	}
	col := func(t simtime.Time) int { return int(float64(t) * scale) }

	rows := map[resource.NodeID][]criticalworks.Placement{}
	for _, p := range d.Placements {
		rows[p.Node] = append(rows[p.Node], p)
	}
	for _, n := range env.Nodes() {
		ps, ok := rows[n.ID]
		if !ok {
			continue
		}
		line := make([]byte, col(span)+1)
		for i := range line {
			line[i] = '.'
		}
		for _, p := range ps {
			s, e := col(p.Window.Start), col(p.Window.End)
			if e <= s {
				e = s + 1
			}
			name := job.Task(p.Task).Name
			for i := s; i < e && i < len(line); i++ {
				line[i] = '#'
			}
			for i, ch := range name {
				if s+i < e && s+i < len(line) {
					line[s+i] = byte(ch)
				}
			}
		}
		fmt.Fprintf(w, "  %-10s perf %.2f |%s|\n", n.Name, n.Perf, string(line))
	}
	fmt.Fprintf(w, "  %-10s           0%s%d\n", "time", strings.Repeat(" ", col(span)), span)
}
