package main

import "testing"

func TestShardFlags(t *testing.T) {
	var s shardFlags
	if err := s.Set("s0=http://127.0.0.1:8081"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("s1=http://127.0.0.1:8082"); err != nil {
		t.Fatal(err)
	}
	if got, want := s.String(), "s0=http://127.0.0.1:8081,s1=http://127.0.0.1:8082"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if s[0].name != "s0" || s[1].base != "http://127.0.0.1:8082" {
		t.Fatalf("parsed fleet = %+v", s)
	}

	for _, bad := range []string{"", "nameonly", "=http://x", "s2="} {
		if err := s.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted, want error", bad)
		}
	}
	if err := s.Set("s0=http://elsewhere:9"); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	if len(s) != 2 {
		t.Fatalf("fleet grew on rejected flags: %+v", s)
	}
}
