// Command gridfront runs the federation front tier: a consistent-hash
// router that partitions submitted jobs across N gridd metascheduler
// shards over the versioned federation wire protocol. Clients talk to it
// exactly as they talk to a single gridd (POST /v1/jobs), and the router
// handles shard failure detection, partition-safe handoff retries,
// confirmed revocation and cross-shard reallocation behind that one
// endpoint.
//
// With -journal-dir set, the router's placement ledger is crash-safe:
// every binding, revocation and terminal result is journaled before it is
// acknowledged, and on startup the ledger is replayed — in-doubt bindings
// are reconciled against the owning shard before the job is retried or
// reallocated, so an accepted job reaches a terminal state exactly once
// across any SIGKILL/restart sequence on either side.
//
// Usage:
//
//	gridfront -listen :8070 -shard s0=http://127.0.0.1:8081 -shard s1=http://127.0.0.1:8082
//	gridfront -journal-dir /var/lib/gridfront/journal -fsync always \
//	    -heartbeat 250ms -dead-after 4 -retry-budget 3
//
// See README.md ("Federated metascheduling") for a full multi-process
// walkthrough and DESIGN.md §13 for the failure model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/breaker"
	"repro/internal/federation"
	"repro/internal/journal"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// shardFlags collects repeated -shard name=url flags in order.
type shardFlags []struct{ name, base string }

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sh := range *s {
		parts[i] = sh.name + "=" + sh.base
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	name, base, ok := strings.Cut(v, "=")
	if !ok || name == "" || base == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	for _, sh := range *s {
		if sh.name == name {
			return fmt.Errorf("duplicate shard name %q", name)
		}
	}
	*s = append(*s, struct{ name, base string }{name, base})
	return nil
}

func main() {
	var shards shardFlags
	var (
		listen       = flag.String("listen", ":8070", "HTTP listen address")
		origin       = flag.String("origin", "gridfront", "router name stamped into handoffs and revocations")
		replicas     = flag.Int("replicas", 0, "consistent-hash virtual points per shard (0 = default)")
		seed         = flag.Uint64("seed", 1, "seed for backoff jitter and breaker jitter")
		heartbeat    = flag.Duration("heartbeat", 250*time.Millisecond, "shard ping period")
		deadAfter    = flag.Int("dead-after", 4, "consecutive missed heartbeats that declare a shard dead")
		retryBudget  = flag.Int("retry-budget", 3, "handoff attempts per binding before revocation starts")
		retryBase    = flag.Duration("retry-base", 100*time.Millisecond, "base handoff retry backoff")
		retryCap     = flag.Duration("retry-cap", 2*time.Second, "handoff retry backoff cap")
		rpcTimeout   = flag.Duration("rpc-timeout", 2*time.Second, "one handoff/revoke RPC budget (also the propagated deadline)")
		workers      = flag.Int("workers", 4, "dispatcher pool size")
		brThreshold  = flag.Int("breaker-threshold", 5, "consecutive failures that trip a shard breaker (0 disables)")
		journalDir   = flag.String("journal-dir", "", "write-ahead placement journal directory; empty disables crash safety")
		fsyncMode    = flag.String("fsync", "always", "journal fsync policy: always|interval|never")
		fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "background sync period under -fsync interval")
		segmentBytes = flag.Int64("segment-bytes", 4<<20, "journal segment rotation threshold")
		compactEvery = flag.Int("compact-every", 256, "terminal jobs between journal compactions (0 = only on recovery/drain)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Var(&shards, "shard", "shard as name=url (repeatable, required)")
	flag.Parse()

	if len(shards) == 0 {
		log.Fatalf("gridfront: at least one -shard name=url is required")
	}

	reg := telemetry.NewRegistry()

	var jnl *journal.Journal
	var recovered *journal.Recovery
	if *journalDir != "" {
		policy, err := journal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("gridfront: %v", err)
		}
		jnl, recovered, err = journal.Open(journal.Options{
			Dir:           *journalDir,
			Fsync:         policy,
			FsyncInterval: *fsyncEvery,
			SegmentBytes:  *segmentBytes,
			CompactEvery:  *compactEvery,
			IsTerminal:    service.Terminal,
			Telemetry:     reg,
		})
		if err != nil {
			log.Fatalf("gridfront: %v", err)
		}
		defer jnl.Close()
		if recovered.TornBytes > 0 {
			log.Printf("gridfront: journal: truncated torn tail (%d bytes: %s)", recovered.TornBytes, recovered.TornReason)
		}
	}

	client := &http.Client{Timeout: *rpcTimeout + time.Second}
	fleet := make([]federation.ShardClient, len(shards))
	for i, sh := range shards {
		fleet[i] = federation.NewHTTPShard(sh.name, sh.base, client)
	}

	cfg := federation.Config{
		Origin:            *origin,
		Shards:            fleet,
		Replicas:          *replicas,
		Journal:           jnl,
		Telemetry:         reg,
		HeartbeatInterval: *heartbeat,
		DeadAfter:         *deadAfter,
		RetryBudget:       *retryBudget,
		RetryBase:         *retryBase,
		RetryCap:          *retryCap,
		HandoffTimeout:    *rpcTimeout,
		Seed:              *seed,
		Workers:           *workers,
		Logf:              log.Printf,
	}
	if *brThreshold > 0 {
		cfg.Breaker = breaker.Config{Threshold: *brThreshold, JitterFrac: 0.2, Seed: *seed + 2}
	}

	router, err := federation.New(cfg)
	if err != nil {
		log.Fatalf("gridfront: %v", err)
	}
	if recovered != nil {
		n, err := router.Restore(recovered)
		if err != nil {
			log.Fatalf("gridfront: recovery: %v", err)
		}
		if n > 0 {
			log.Printf("gridfront: recovered %d jobs from the placement journal", n)
		}
	}
	router.Start()

	httpSrv := &http.Server{Addr: *listen, Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("gridfront: routing across %d shards on %s (heartbeat %s, dead-after %d, retry budget %d)",
		len(fleet), *listen, *heartbeat, *deadAfter, *retryBudget)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("gridfront: %s received, draining (budget %s)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("gridfront: http: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := router.Drain(ctx); err != nil {
		log.Printf("gridfront: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("gridfront: http shutdown: %v", err)
	}
	router.Close()
	m := router.Metrics()
	log.Printf("gridfront: drained — accepted=%d completed=%d rejected=%d reallocated=%d revocations=%d",
		m.Accepted, m.Completed, m.Rejected, m.Reallocated, m.Revocations)
}
