// Command gridd runs the metascheduler as a long-running HTTP service: a
// bounded admission queue with backpressure and priority shedding,
// deadline-feasibility admission control, per-domain circuit breakers, and
// a graceful SIGTERM drain that snapshots still-queued jobs to disk in the
// jobio wire format.
//
// With -journal-dir set, gridd is crash-safe: every job lifecycle
// transition is appended to a write-ahead journal (durable under the
// -fsync policy) before it is acknowledged, and on startup the journal is
// replayed — terminal jobs keep their ledger entries (the duplicate-submit
// guard survives restarts) and jobs that were queued or in flight when the
// process died are re-enqueued, so an accepted job reaches a terminal
// state exactly once across any SIGKILL/restart sequence.
//
// With -shard set, gridd additionally serves the federation wire protocol
// (handoff, revoke, ping) so a gridfront router can place jobs on it; with
// -join it runs the rejoin handshake against the router on startup and
// pushes terminal-state notices back, and -lease parks the engine whenever
// the router has been silent too long (partition safety). Without -shard,
// behavior is byte-identical to a standalone gridd.
//
// Usage:
//
//	gridd -listen :8080 -domains 3 -seed 1
//	gridd -env nodes.json -queue 32 -snapshot drained.json
//	gridd -journal-dir /var/lib/gridd/journal -fsync always
//	gridd -shard s0 -join http://127.0.0.1:8070 -lease 2s
//
// The environment comes from -env (a jobio node file, e.g. the output of
// `jobgen -env`) or is generated synthetically from -domains/-seed. See
// the README for the curl walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/breaker"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/jobio"
	"repro/internal/journal"
	"repro/internal/metasched"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "HTTP listen address")
		envPath      = flag.String("env", "", "environment JSON (jobio node file); empty generates one")
		domains      = flag.Int("domains", 2, "domain count for the generated environment")
		seed         = flag.Uint64("seed", 1, "seed for the generated environment and fault schedule")
		queueCap     = flag.Int("queue", 64, "admission queue bound")
		snapshot     = flag.String("snapshot", "gridd-drained.json", "drain snapshot path (empty disables)")
		buildTimeout = flag.Duration("build-timeout", 30*time.Second, "per-job strategy build budget (0 = unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM")
		workers      = flag.Int("workers", 0, "parallel per-level build workers (0 = sequential)")
		placers      = flag.Int("placers", 0, "concurrent optimistic placers per arrival batch (≤1 = classic single-writer placement)")
		brThreshold  = flag.Int("breaker-threshold", 5, "consecutive failures that trip a domain breaker (0 disables breakers)")
		taskFailRate = flag.Float64("task-fail-rate", 0, "per-activation mid-run task failure probability (chaos mode)")
		mtbf         = flag.Float64("mtbf", 0, "mean model time between node outages (0 disables outages)")
		mttr         = flag.Float64("mttr", 50, "mean outage duration")
		faultHorizon = flag.Int64("fault-horizon", 1_000_000, "model-time horizon of the outage schedule")
		journalDir   = flag.String("journal-dir", "", "write-ahead job journal directory; empty disables crash safety")
		fsyncMode    = flag.String("fsync", "always", "journal fsync policy: always|interval|never")
		fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "background sync period under -fsync interval")
		segmentBytes = flag.Int64("segment-bytes", 4<<20, "journal segment rotation threshold")
		compactEvery = flag.Int("compact-every", 256, "terminal jobs between journal compactions (0 = only on recovery/drain)")
		shardName    = flag.String("shard", "", "run as a federation shard with this name (serves the handoff/revoke/ping endpoints)")
		joinURL      = flag.String("join", "", "router base URL to join (requires -shard); empty serves federation endpoints standalone")
		leaseTimeout = flag.Duration("lease", 0, "router-contact lease: park the engine when the router has been silent this long (0 disables; requires -shard)")
		noRepair     = flag.Bool("no-repair", false, "disable incremental strategy repair on the fallback path (every re-anchor runs a full critical-works rebuild)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
		spansPath    = flag.String("spans", "", "write scheduling spans as JSON lines to this file, - for stderr")
		tracePath    = flag.String("trace", "", "write VO lifecycle events as JSON lines to this file, - for stderr; sharing the -spans path interleaves both streams line-atomically")
	)
	flag.Parse()

	env, err := loadEnv(*envPath, *domains, *seed)
	if err != nil {
		log.Fatalf("gridd: %v", err)
	}

	// The span and event sinks may share one file: openSink deduplicates
	// by path and wraps the writer so each JSON line lands in one
	// serialized Write — the merged stream stays parseable.
	sinks := map[string]io.Writer{}
	spanSink, err := openSink(sinks, *spansPath)
	if err != nil {
		log.Fatalf("gridd: spans: %v", err)
	}
	traceSink, err := openSink(sinks, *tracePath)
	if err != nil {
		log.Fatalf("gridd: trace: %v", err)
	}
	var spans *telemetry.Tracer
	if spanSink != nil {
		spans = telemetry.NewTracer(spanSink)
	}
	var tracer metasched.Tracer
	if traceSink != nil {
		tracer = metasched.NewJSONLTracer(traceSink)
	}

	// One registry serves /metrics, the VO hierarchy, the breakers and the
	// journal.
	reg := telemetry.NewRegistry()

	var jnl *journal.Journal
	var recovered *journal.Recovery
	if *journalDir != "" {
		policy, err := journal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("gridd: %v", err)
		}
		jnl, recovered, err = journal.Open(journal.Options{
			Dir:           *journalDir,
			Fsync:         policy,
			FsyncInterval: *fsyncEvery,
			SegmentBytes:  *segmentBytes,
			CompactEvery:  *compactEvery,
			IsTerminal:    service.Terminal,
			Telemetry:     reg,
		})
		if err != nil {
			log.Fatalf("gridd: %v", err)
		}
		defer jnl.Close()
		if recovered.TornBytes > 0 {
			log.Printf("gridd: journal: truncated torn tail (%d bytes: %s)", recovered.TornBytes, recovered.TornReason)
		}
	}

	cfg := service.Config{
		Env:          env,
		QueueCap:     *queueCap,
		BuildTimeout: *buildTimeout,
		DrainTimeout: *drainTimeout,
		SnapshotPath: *snapshot,
		Telemetry:    reg,
		Journal:      jnl,
		Sched: metasched.Config{
			Seed:     *seed,
			Workers:  *workers,
			Placers:  *placers,
			NoRepair: *noRepair,
			Tracer:   tracer,
			Spans:    spans,
			Faults: faults.Config{
				MTBF:         *mtbf,
				MTTR:         *mttr,
				TaskFailRate: *taskFailRate,
				MaxRetries:   2,
				JitterFrac:   0.2,
				Until:        timeOrZero(*mtbf, *faultHorizon),
				Seed:         *seed + 1,
			},
		},
	}
	if *brThreshold > 0 {
		cfg.Breaker = &breaker.Config{Threshold: *brThreshold, JitterFrac: 0.2, Seed: *seed + 2}
	}

	// Federation glue (-shard): the member serves the handoff/revoke/ping
	// endpoints in front of the service and, with -join, runs the rejoin
	// handshake and pushes terminal notices to the router. Recovered jobs
	// are then parked for the router's join ruling instead of requeued
	// blindly, and -lease parks the engine whenever the router has gone
	// silent, so a partitioned shard stops starting work the router may be
	// reallocating to a survivor. Without -shard none of this is built and
	// gridd behaves exactly as before.
	if *shardName == "" && (*joinURL != "" || *leaseTimeout > 0) {
		log.Fatalf("gridd: -join and -lease require -shard")
	}
	var member *federation.Member
	var lease *federation.Lease
	if *shardName != "" {
		if *leaseTimeout > 0 {
			lease = federation.NewLease(*leaseTimeout)
			cfg.Gate = lease.Fresh
		}
		member = federation.NewMember(federation.MemberConfig{
			Shard: *shardName, Router: *joinURL, Lease: lease,
			Seed: *seed + 3, Telemetry: reg, Logf: log.Printf,
		})
		cfg.OnTerminal = member.Terminal
		cfg.HoldRecovered = true
	}

	srv, err := service.New(cfg)
	if err != nil {
		log.Fatalf("gridd: %v", err)
	}
	if lease != nil {
		lease.OnRefresh(srv.Kick)
	}
	if recovered != nil {
		stats, err := srv.Restore(recovered)
		if err != nil {
			log.Fatalf("gridd: recovery: %v", err)
		}
		if stats.Restored > 0 || stats.TornBytes > 0 {
			log.Printf("gridd: recovered journal through LSN %d in %.3fs — requeued=%d terminal=%d invalid=%d duplicates=%d",
				stats.LastLSN, stats.ReplaySeconds, stats.Requeued, stats.Terminal, stats.Invalid, stats.DuplicatesSuppressed)
		}
	}
	srv.Start()

	handler := srv.Handler()
	if member != nil {
		member.Bind(srv)
		member.Start()
		handler = member.Handler(handler)
	}
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *listen, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("gridd: serving on %s (%d nodes, %d domains, queue %d)",
		*listen, env.NumNodes(), len(env.Domains()), *queueCap)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("gridd: %s received, draining (budget %s)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("gridd: http: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if member != nil {
		member.Close()
	}
	if err := srv.Drain(ctx); err != nil {
		log.Printf("gridd: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("gridd: http shutdown: %v", err)
	}
	m := srv.Metrics()
	log.Printf("gridd: drained — accepted=%d completed=%d rejected=%d drained=%d",
		m.Accepted, m.Completed, m.Rejected, m.Drained)
}

// openSink opens (or reuses) a line-oriented JSONL sink. Identical paths
// return the same serialized writer, so spans and VO events interleave in
// one file without torn lines. "" disables the sink; "-" means stderr.
func openSink(open map[string]io.Writer, path string) (io.Writer, error) {
	if path == "" {
		return nil, nil
	}
	if w, ok := open[path]; ok {
		return w, nil
	}
	var raw io.Writer = os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		raw = f
	}
	w := telemetry.NewSyncWriter(raw)
	open[path] = w
	return w, nil
}

// loadEnv reads a jobio environment or generates the synthetic one.
func loadEnv(path string, domains int, seed uint64) (*resource.Environment, error) {
	if path == "" {
		return workload.New(workload.Default(seed)).Environment(domains), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("environment: %w", err)
	}
	defer f.Close()
	env, err := jobio.ReadEnvironment(f)
	if err != nil {
		return nil, fmt.Errorf("environment %s: %w", path, err)
	}
	return env, nil
}

// timeOrZero returns horizon when outages are enabled, 0 otherwise (a
// non-zero Until with MTBF 0 is harmless but misleading in logs).
func timeOrZero(mtbf float64, horizon int64) simtime.Time {
	if mtbf > 0 {
		return simtime.Time(horizon)
	}
	return 0
}
