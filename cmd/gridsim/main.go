// Command gridsim regenerates the paper's evaluation artifacts: every
// figure of Toporkov (PaCT 2009) plus the §5 policy claims and two design
// ablations. See EXPERIMENTS.md for the experiment index and the
// paper-vs-measured record.
//
// Usage:
//
//	gridsim -exp all                 # run everything at default scale
//	gridsim -exp fig3a -jobs 12000   # the paper's full corpus size
//	gridsim -exp fig4c -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (comma-separated), or all; see -list")
		jobs    = flag.Int("jobs", 1000, "corpus size for the statistical experiments (the paper used >12000 for fig3)")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for independent units (1 forces the sequential path; results are byte-identical at any value)")
		list    = flag.Bool("list", false, "list the experiment ids and what they regenerate")

		// Fault-injection knobs for the availability sweep (E12).
		mtbf       = flag.Float64("mtbf", 0, "mean time between node failures; overrides the sweep's availability levels when set (requires -mttr)")
		mttr       = flag.Float64("mttr", 20, "mean outage duration in ticks")
		taskFail   = flag.Float64("task-fail-rate", 0.05, "per-activation probability a running job loses a task")
		maxRetries = flag.Int("max-retries", 2, "bounded retry attempts before falling back to remaining supporting levels")

		noRepair = flag.Bool("no-repair", false, "disable incremental strategy repair on the fallback path (every re-anchor runs a full critical-works rebuild; reports and traces are byte-identical either way)")

		telemetryOut = flag.String("telemetry", "", "dump a final metrics-registry snapshot (Prometheus text format) to this file, or - for stderr; reports on stdout are unaffected")
	)
	flag.Parse()

	// The registry snapshot goes to stderr or a file, never stdout: the
	// experiment reports must stay byte-identical with telemetry on.
	var reg *telemetry.Registry
	if *telemetryOut != "" {
		reg = telemetry.NewRegistry()
	}

	if *list {
		fmt.Println("experiments (see DESIGN.md §4 and EXPERIMENTS.md):")
		for _, row := range [][2]string{
			{"fig2", "E1: the §3 worked example — critical works, distributions, collision"},
			{"fig3a", "E2: % admissible application-level schedules per strategy"},
			{"fig3b", "E3: collision split across fast/slow nodes"},
			{"fig4a", "E4: node load level by performance group under job flows"},
			{"fig4b", "E5: relative job cost and task execution time"},
			{"fig4c", "E6: strategy time-to-live and start deviation"},
			{"policies", "E7: local batch policies (§5 claims)"},
			{"ablation-collision", "E8: economic reallocation vs pinned-node delay"},
			{"ablation-levels", "E9: S1 vs MS1 generation expense and coverage"},
			{"comparison", "E10: critical works vs min-min/max-min/sufferage/OLB"},
			{"local-passing", "E11: advance reservations vs queued local passing"},
			{"availability", "E12: QoS-miss rate and TTL vs node availability (fault injection)"},
		} {
			fmt.Printf("  %-20s %s\n", row[0], row[1])
		}
		return
	}

	fig3Cfg := func(jobs int) experiments.Fig3Config {
		cfg := experiments.DefaultFig3(*seed, jobs)
		cfg.Workers = *workers
		cfg.Telemetry = reg
		return cfg
	}
	fig4Cfg := func() experiments.Fig4Config {
		cfg := experiments.DefaultFig4(*seed, fig4Scale(*jobs))
		cfg.Workers = *workers
		cfg.Telemetry = reg
		cfg.NoRepair = *noRepair
		return cfg
	}
	runners := map[string]func() (*experiments.Report, error){
		"fig2": func() (*experiments.Report, error) {
			return experiments.Fig2Telemetry(*workers, reg)
		},
		"fig3a": func() (*experiments.Report, error) {
			return experiments.Fig3a(fig3Cfg(*jobs))
		},
		"fig3b": func() (*experiments.Report, error) {
			return experiments.Fig3b(fig3Cfg(*jobs))
		},
		"fig4a": func() (*experiments.Report, error) {
			return experiments.Fig4a(fig4Cfg())
		},
		"fig4b": func() (*experiments.Report, error) {
			return experiments.Fig4b(fig4Cfg())
		},
		"fig4c": func() (*experiments.Report, error) {
			return experiments.Fig4c(fig4Cfg())
		},
		"policies": func() (*experiments.Report, error) {
			return experiments.Policies(experiments.DefaultPolicies(*seed, *jobs))
		},
		"ablation-collision": func() (*experiments.Report, error) {
			return experiments.AblationCollision(fig3Cfg(ablationScale(*jobs)))
		},
		"ablation-levels": func() (*experiments.Report, error) {
			cfg := experiments.DefaultAblationLevels(*seed, ablationScale(*jobs))
			cfg.Workers = *workers
			return experiments.AblationLevels(cfg)
		},
		"comparison": func() (*experiments.Report, error) {
			return experiments.Comparison(fig3Cfg(ablationScale(*jobs)))
		},
		"local-passing": func() (*experiments.Report, error) {
			return experiments.LocalPassing(fig4Cfg())
		},
		"availability": func() (*experiments.Report, error) {
			cfg := experiments.DefaultAvailability(*seed, availabilityScale(*jobs))
			cfg.MTTR = *mttr
			cfg.TaskFailRate = *taskFail
			cfg.MaxRetries = *maxRetries
			cfg.Workers = *workers
			cfg.Telemetry = reg
			cfg.NoRepair = *noRepair
			if *mtbf > 0 {
				// A fixed MTBF pins the sweep to the baseline plus the one
				// availability level it implies.
				cfg.Levels = []float64{1.0, *mtbf / (*mtbf + *mttr)}
			}
			return experiments.Availability(cfg)
		},
	}
	order := []string{"fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig4c",
		"policies", "ablation-collision", "ablation-levels", "comparison", "local-passing",
		"availability"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "gridsim: unknown experiment %q (have %s, all)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}
	for _, id := range selected {
		rep, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if reg != nil {
		if err := dumpTelemetry(reg, *telemetryOut); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpTelemetry writes the final registry snapshot to path ("-" = stderr).
func dumpTelemetry(reg *telemetry.Registry, path string) error {
	var w io.Writer = os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.WritePrometheus(w)
}

// fig4Scale caps the flow length: the VO experiment is an order of
// magnitude heavier per job than the application-level corpus.
func fig4Scale(jobs int) int {
	if jobs > 400 {
		return 400
	}
	return jobs
}

// ablationScale caps the ablation corpora similarly.
func ablationScale(jobs int) int {
	if jobs > 2000 {
		return 2000
	}
	return jobs
}

// availabilityScale caps the fault sweep: it runs one VO per
// (strategy, availability) pair, an order of magnitude more simulation
// than a single fig4 run.
func availabilityScale(jobs int) int {
	if jobs > 200 {
		return 200
	}
	return jobs
}
