// Command scalecheck is the CI gate over cmd/gridload's BENCH_scale.json
// artifact. It applies two kinds of checks (either or both):
//
//   - -baseline: diff the current report against a committed baseline.
//     The deterministic section (admission counts, terminal states,
//     model-time goodput) must match exactly — any drift is a behavioral
//     scheduler regression, or an intentional change that must re-commit
//     the baseline. The wall-clock section is gated with per-metric
//     tolerances: goodput may not drop below baseline × -min-goodput-ratio,
//     and the admission p99 may not exceed baseline × -max-p99-ratio once
//     past the -p99-floor noise threshold.
//   - -expect-identical: diff two fresh runs of the same scenario and
//     fail on any deterministic divergence — the reproducibility check
//     the in-process path guarantees.
//
// Usage:
//
//	scalecheck -current BENCH_scale.json -baseline BENCH_scale_baseline.json
//	scalecheck -current run1.json -expect-identical run2.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scalereport"
)

func main() {
	var (
		current    = flag.String("current", "BENCH_scale.json", "report from this run")
		baseline   = flag.String("baseline", "", "committed baseline to gate against")
		identical  = flag.String("expect-identical", "", "second fresh run that must match -current deterministically")
		minGoodput = flag.Float64("min-goodput-ratio", scalereport.DefaultGate().MinGoodputRatio, "fail when wall goodput < baseline × ratio")
		maxP99     = flag.Float64("max-p99-ratio", scalereport.DefaultGate().MaxP99Ratio, "fail when admission p99 > baseline × ratio")
		p99Floor   = flag.Float64("p99-floor", scalereport.DefaultGate().P99FloorSeconds, "p99 below this many seconds never fails the gate")
	)
	flag.Parse()
	if *baseline == "" && *identical == "" {
		fmt.Fprintln(os.Stderr, "scalecheck: at least one of -baseline or -expect-identical is required")
		os.Exit(2)
	}

	cur, err := scalereport.Load(*current)
	if err != nil {
		fatal(err)
	}
	failed := false
	if *identical != "" {
		other, err := scalereport.Load(*identical)
		if err != nil {
			fatal(err)
		}
		if diffs := scalereport.CompareDeterministic(cur, other); len(diffs) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "scalecheck: FAIL — same-seed runs diverge (determinism broken):\n")
			printAll(diffs)
		} else {
			fmt.Printf("scalecheck: determinism OK — %s and %s agree on all deterministic fields\n", *current, *identical)
		}
	}
	if *baseline != "" {
		base, err := scalereport.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		if diffs := scalereport.CompareDeterministic(cur, base); len(diffs) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "scalecheck: FAIL — deterministic drift vs baseline %s:\n", *baseline)
			printAll(diffs)
		}
		opt := scalereport.GateOptions{MinGoodputRatio: *minGoodput, MaxP99Ratio: *maxP99, P99FloorSeconds: *p99Floor}
		if fails := scalereport.GateWall(cur, base, opt); len(fails) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "scalecheck: FAIL — wall-clock gate vs baseline %s:\n", *baseline)
			printAll(fails)
		}
		if !failed {
			fmt.Printf("scalecheck: OK — goodput %.1f jobs/s (baseline %.1f), admission p99 %.4fs (baseline %.4fs), deterministic section identical\n",
				cur.Wall.GoodputJobsPerSec, base.Wall.GoodputJobsPerSec,
				cur.Wall.AdmissionP99, base.Wall.AdmissionP99)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printAll(msgs []string) {
	for _, m := range msgs {
		fmt.Fprintf(os.Stderr, "  - %s\n", m)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "scalecheck: %v\n", err)
	os.Exit(2)
}
