package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metasched"
	"repro/internal/scalereport"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// testOptions is a small overload scenario: burst 8 vs proc 5 builds
// backlog against a 16-slot queue, so shedding, 429s and drain-under-load
// all occur within 120 jobs.
func testOptions() options {
	return options{
		mode: "inprocess", seed: 1, jobs: 120,
		arrival: workload.ProcBursty,
		spec:    workload.ArrivalSpec{Kind: workload.ProcBursty},
		mean:    12, strategy: "S1", priorities: 3, domains: 2,
		queue: 16, burst: 8, proc: 5,
	}
}

func TestInProcessDeterministic(t *testing.T) {
	a, err := run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if diffs := scalereport.CompareDeterministic(a, b); len(diffs) != 0 {
		t.Errorf("same-seed runs diverge: %v", diffs)
	}
	// A different seed must actually change the outcome.
	o := testOptions()
	o.seed = 2
	c, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := scalereport.CompareDeterministic(a, c); len(diffs) == 0 {
		t.Error("seed change produced an identical deterministic section")
	}
}

func TestInProcessInvariants(t *testing.T) {
	rep, err := run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Deterministic
	if d.Submitted != 120 {
		t.Errorf("submitted = %d, want 120", d.Submitted)
	}
	// Every client-observed outcome matches the server's own counters.
	if uint64(d.ClientAccepted) != d.Accepted {
		t.Errorf("client accepted %d != server accepted %d", d.ClientAccepted, d.Accepted)
	}
	if uint64(d.Client429) != d.Overloaded {
		t.Errorf("client 429s %d != server overloaded %d", d.Client429, d.Overloaded)
	}
	if d.RetryAfterViolations != 0 {
		t.Errorf("%d overload responses lacked a usable Retry-After", d.RetryAfterViolations)
	}
	// The scenario genuinely exercises the overload machinery.
	if d.Completed == 0 || d.Client429 == 0 || d.Drained == 0 {
		t.Errorf("scenario too tame: %+v", d)
	}
	// Accepted jobs end completed, drained, shed or rejected-in-flight
	// (deadline misses at schedule time) — nowhere else. Rejected also
	// counts infeasible submit-time refusals and sheds, so subtract both.
	if d.Completed+d.Drained+(d.Rejected-d.Infeasible) != d.Accepted {
		t.Errorf("accepted %d != completed %d + drained %d + shed %d + in-flight rejects %d",
			d.Accepted, d.Completed, d.Drained, d.Shed, d.Rejected-d.Infeasible-d.Shed)
	}
	var terminalTotal uint64
	for _, n := range d.TerminalByState {
		terminalTotal += n
	}
	if terminalTotal == 0 {
		t.Error("terminal-state stream saw nothing")
	}
	if rep.Wall.ElapsedSeconds <= 0 {
		t.Error("wall elapsed not measured")
	}
}

func TestRunValidation(t *testing.T) {
	o := testOptions()
	o.jobs = 0
	if _, err := run(o); err == nil {
		t.Error("jobs=0 accepted")
	}
	o = testOptions()
	o.mode = "teleport"
	if _, err := run(o); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestHTTPMode drives the real wire path end to end: a live engine-loop
// server behind httptest, open-loop submission, terminal polling, counter
// diffing and the /metrics histogram scrape.
func TestHTTPMode(t *testing.T) {
	gen := workload.New(workload.Default(7))
	srv, err := service.New(service.Config{
		Env:       gen.Environment(2),
		QueueCap:  8,
		Telemetry: telemetry.NewRegistry(),
		Sched:     metasched.Config{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	o := testOptions()
	o.mode = "http"
	o.targets = []string{ts.URL}
	o.jobs = 40
	o.seed = 7
	o.honorRetry = false // no wall-clock backoff sleeps in tests
	o.tick = 0           // fire the whole schedule immediately
	o.wait = 20 * time.Second
	rep, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Deterministic
	if d.Submitted != 40 {
		t.Errorf("server saw %d submissions, want 40", d.Submitted)
	}
	if uint64(d.ClientAccepted) != d.Accepted {
		t.Errorf("client accepted %d != server accepted %d", d.ClientAccepted, d.Accepted)
	}
	if d.RetryAfterViolations != 0 {
		t.Errorf("%d overload responses lacked a usable Retry-After", d.RetryAfterViolations)
	}
	if d.ClientAccepted == 0 {
		t.Error("nothing was accepted")
	}
	if len(rep.Deterministic.TerminalByState) == 0 {
		t.Error("no accepted job reached a terminal state within the wait")
	}
}

func TestParseBuckets(t *testing.T) {
	scrape := `# HELP grid_service_queue_wait_seconds x
# TYPE grid_service_queue_wait_seconds histogram
grid_service_queue_wait_seconds_bucket{le="0.01"} 3
grid_service_queue_wait_seconds_bucket{le="0.1"} 9
grid_service_queue_wait_seconds_bucket{le="+Inf"} 10
grid_service_queue_wait_seconds_sum 1.5
grid_service_queue_wait_seconds_count 10
other_metric_bucket{le="1"} 5
`
	bounds, cums, err := parseBuckets(scrape, "grid_service_queue_wait_seconds_bucket")
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 3 || bounds[0] != 0.01 || bounds[1] != 0.1 || bounds[2] != infBound {
		t.Errorf("bounds = %v", bounds)
	}
	if cums[0] != 3 || cums[1] != 9 || cums[2] != 10 {
		t.Errorf("cums = %v", cums)
	}
	if _, _, err := parseBuckets("nothing here", "grid_service_queue_wait_seconds_bucket"); err == nil {
		t.Error("empty scrape parsed")
	}
	if _, _, err := parseBuckets(`x_bucket{le="oops"} 1`, "x_bucket"); err == nil {
		t.Error("bad le parsed")
	}
	if _, _, err := parseBuckets(`x_bucket{le="1"} zzz`, "x_bucket"); err == nil {
		t.Error("bad count parsed")
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{0.01, 0.1, infBound}
	cums := []uint64{3, 9, 10}
	// Median: rank 5 lands in (0.01, 0.1], frac (5-3)/6.
	if got, want := bucketQuantile(bounds, cums, 0.5), 0.01+(0.1-0.01)*(2.0/6.0); got != want {
		t.Errorf("median = %v, want %v", got, want)
	}
	// p99 lands in the +Inf bucket and clamps to the highest finite bound.
	if got := bucketQuantile(bounds, cums, 0.99); got != 0.1 {
		t.Errorf("p99 = %v, want 0.1", got)
	}
	if got := bucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := bucketQuantile(bounds, []uint64{0, 0, 0}, 0.5); got != 0 {
		t.Errorf("all-zero = %v", got)
	}
}
