package main

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/metasched"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestTargetPoolRoundRobin pins the fleet rotation and the per-target
// backoff semantics: a backed-off target is skipped while others are
// eligible, re-enters the rotation when its hint expires, and when the
// whole fleet is backing off pick reports the soonest expiry.
func TestTargetPoolRoundRobin(t *testing.T) {
	p := newTargetPool([]string{"a", "b", "c"})
	now := time.Unix(1000, 0)
	var order []string
	for i := 0; i < 6; i++ {
		idx, wait := p.pick(now)
		if wait != 0 {
			t.Fatalf("pick %d: wait %s with no backoff", i, wait)
		}
		order = append(order, p.url(idx))
	}
	if got, want := len(order), 6; got != want {
		t.Fatalf("picked %d", got)
	}
	for i, u := range []string{"a", "b", "c", "a", "b", "c"} {
		if order[i] != u {
			t.Fatalf("rotation = %v", order)
		}
	}

	// Back off "b": the rotation closes over {a, c}.
	p.setBackoff(1, 10*time.Second, now)
	order = nil
	for i := 0; i < 4; i++ {
		idx, wait := p.pick(now)
		if wait != 0 {
			t.Fatalf("wait %s while a and c are eligible", wait)
		}
		order = append(order, p.url(idx))
	}
	for _, u := range order {
		if u == "b" {
			t.Fatalf("picked backed-off target: %v", order)
		}
	}

	// Back off the rest too: pick returns the soonest expiry and its wait.
	p.setBackoff(0, 30*time.Second, now)
	p.setBackoff(2, 20*time.Second, now)
	idx, wait := p.pick(now)
	if p.url(idx) != "b" || wait != 10*time.Second {
		t.Fatalf("all-backed-off pick = %s after %s, want b after 10s", p.url(idx), wait)
	}

	// Hints only extend: a shorter hint cannot shrink the window.
	p.setBackoff(1, time.Second, now)
	if idx, wait = p.pick(now); p.url(idx) != "b" || wait != 10*time.Second {
		t.Fatalf("shrunk backoff: %s after %s", p.url(idx), wait)
	}

	// After expiry the target is eligible again.
	if idx, wait = p.pick(now.Add(11 * time.Second)); p.url(idx) != "b" || wait != 0 {
		t.Fatalf("post-expiry pick = %s after %s", p.url(idx), wait)
	}
}

// TestHTTPModeMultiTarget drives two live servers through the fleet path:
// submissions round-robin across both, the counter diff and terminal poll
// aggregate across both ledgers, and the scrape merges both histograms.
func TestHTTPModeMultiTarget(t *testing.T) {
	var wg sync.WaitGroup
	targets := make([]string, 2)
	servers := make([]*service.Server, 2)
	for i := range servers {
		gen := workload.New(workload.Default(7))
		srv, err := service.New(service.Config{
			Env:       gen.Environment(2),
			QueueCap:  64,
			Telemetry: telemetry.NewRegistry(),
			Sched:     metasched.Config{Seed: uint64(i) + 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		servers[i] = srv
		targets[i] = ts.URL
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, srv := range servers {
			wg.Add(1)
			go func(s *service.Server) { defer wg.Done(); s.Drain(ctx) }(srv)
		}
		wg.Wait()
	}()

	o := testOptions()
	o.mode = "http"
	o.targets = targets
	o.jobs = 40
	o.seed = 7
	o.honorRetry = false
	o.tick = 0
	o.wait = 20 * time.Second
	rep, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Deterministic
	if d.Submitted != 40 {
		t.Errorf("fleet saw %d submissions, want 40", d.Submitted)
	}
	if uint64(d.ClientAccepted) != d.Accepted {
		t.Errorf("client accepted %d != fleet accepted %d", d.ClientAccepted, d.Accepted)
	}
	if len(rep.Deterministic.TerminalByState) == 0 {
		t.Error("no accepted job reached a terminal state within the wait")
	}
	// Round-robin with a generous queue must land work on BOTH servers.
	for i, srv := range servers {
		if srv.Metrics().Submitted == 0 {
			t.Errorf("server %d received no submissions", i)
		}
	}
}
