package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/jobio"
	"repro/internal/metasched"
	"repro/internal/scalereport"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// runInProcess drives a manual-mode service deterministically: the whole
// run happens on this goroutine (no engine loop), so every admission
// decision, shed choice and terminal state is a pure function of the
// seed and flags. Wall-clock only leaks into the report's wallClock
// section.
//
// The open-loop shape: arrivals are submitted in bursts of o.burst
// back-to-back (the generator never waits for the scheduler — that is
// what "open loop" means), then o.proc jobs are scheduled. With
// proc < burst the backlog grows by burst−proc per step until the queue
// bound is hit, after which shedding and 429s carry the overload — the
// same dynamics a sustained-overload daemon sees, in model time. The run
// ends with a Drain while the queue is still loaded.
func runInProcess(o options) (*scalereport.Report, error) {
	gen := workload.New(workloadConfig(o))
	env := gen.Environment(o.domains)

	terminal := map[string]uint64{} // terminal-state stream tally
	reg := telemetry.NewRegistry()
	srv, err := service.New(service.Config{
		Env:       env,
		QueueCap:  o.queue,
		Telemetry: reg,
		Sched:     metasched.Config{Seed: o.seed, Workers: o.workers, Placers: o.placers},
		OnTerminal: func(r service.Record) {
			terminal[r.State]++
		},
	})
	if err != nil {
		return nil, err
	}

	flow := gen.FlowWith(o.spec, 0, o.jobs, 0)
	det := scalereport.Deterministic{}
	var clientLat []float64
	start := time.Now()
	for i, a := range flow {
		wire := jobio.FromJob(a.Job)
		// The wire deadline is the relative QoS budget; the flow's
		// absolute deadline re-anchors at the service's own arrival tick.
		wire.Deadline = int64(a.Job.Deadline - a.At)
		t0 := time.Now()
		_, err := srv.Submit(wire, o.strategy, i%o.priorities)
		clientLat = append(clientLat, time.Since(t0).Seconds())
		if err == nil {
			det.ClientAccepted++
		} else {
			var se *service.SubmitError
			if !errors.As(err, &se) {
				return nil, fmt.Errorf("submit %s: %w", wire.Name, err)
			}
			switch se.Code {
			case service.CodeOverloaded:
				det.Client429++
				if se.RetryAfter <= 0 {
					det.RetryAfterViolations++
				}
			case service.CodeDraining:
				det.Client503++
				if se.RetryAfter <= 0 {
					det.RetryAfterViolations++
				}
			case service.CodeInfeasible:
				// Ledgered and counted by the service's own counters.
			default:
				return nil, fmt.Errorf("submit %s: unexpected admission error: %w", wire.Name, se)
			}
		}
		if (i+1)%o.burst == 0 {
			srv.Process(o.proc)
		}
	}

	// Drain under load: still-queued jobs snapshot as drained, in-flight
	// work runs to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	elapsed := time.Since(start).Seconds()

	m := srv.Metrics()
	det.Submitted = m.Submitted
	det.Accepted = m.Accepted
	det.Completed = m.Completed
	det.Rejected = m.Rejected
	det.Shed = m.Shed
	det.Infeasible = m.Infeasible
	det.Overloaded = m.Overloaded
	det.Drained = m.Drained
	det.QueueHighWater = m.QueueHighWater
	det.EngineTicks = m.EngineNow
	det.TerminalByState = terminal
	if m.EngineNow > 0 {
		det.GoodputPerKTicks = float64(m.Completed) * 1000 / float64(m.EngineNow)
	}
	det.PlacerCommits = reg.Counter("grid_placer_commits_total", "").Value()
	det.PlacerConflicts = reg.Counter("grid_placer_conflicts_total", "").Value()
	det.PlacerRetries = reg.Counter("grid_placer_retries_total", "").Value()

	// Admission-latency percentiles from the same fixed-bucket histogram
	// /metrics exposes, via telemetry.Quantile.
	qw := reg.Histogram("grid_service_queue_wait_seconds", "", nil)
	wall := scalereport.WallClock{
		ElapsedSeconds: elapsed,
		AdmissionP50:   finiteOrZero(qw.Quantile(0.5)),
		AdmissionP95:   finiteOrZero(qw.Quantile(0.95)),
		AdmissionP99:   finiteOrZero(qw.Quantile(0.99)),
		AdmissionP999:  finiteOrZero(qw.Quantile(0.999)),
		ClientP50:      scalereport.Percentile(clientLat, 0.5),
		ClientP95:      scalereport.Percentile(clientLat, 0.95),
		ClientP99:      scalereport.Percentile(clientLat, 0.99),
		ClientP999:     scalereport.Percentile(clientLat, 0.999),
	}
	if elapsed > 0 {
		wall.GoodputJobsPerSec = float64(m.Completed) / elapsed
	}
	return &scalereport.Report{
		Schema:        scalereport.Schema,
		Config:        runConfig(o),
		Deterministic: det,
		Wall:          wall,
	}, nil
}

// finiteOrZero maps an empty-histogram NaN (or an infinite estimate) to 0
// so the artifact always marshals.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
