// Command gridload is the million-job scale harness: an open-loop load
// generator that drives a gridd scheduler with synthetic job flows from
// internal/workload at configurable arrival rates — Poisson, bursty
// (Markov-modulated on/off) and diurnal (sinusoidal) processes, all
// seeded and reproducible — and emits a BENCH_scale.json artifact
// (internal/scalereport) that cmd/scalecheck diffs against a committed
// baseline in CI.
//
// Two modes:
//
//   - -mode inprocess (default) builds the service in the same process
//     and drives it deterministically in manual mode: arrivals are
//     submitted in bursts of -burst, then -proc jobs are scheduled,
//     emulating an offered:served ratio of burst:proc. Everything in the
//     report's "deterministic" section is a pure function of the seed
//     and flags — two runs produce identical values — while wall-clock
//     latencies land in the "wallClock" section. The run ends with a
//     Drain while the queue is still loaded, so drain-under-load
//     behavior is part of every measurement.
//   - -mode http drives real daemons over the wire at one or more
//     -target URLs (gridd or gridfront; repeat the flag to round-robin
//     submissions across a fleet), pacing submissions on the wall clock
//     (-tick per model tick), measuring client-observed end-to-end
//     latency, 429/503 rates and per-target Retry-After-honoring backoff
//     (an overloaded target is skipped until its hint expires while the
//     rest keep receiving load), then scraping every target's /metrics
//     for the aggregate admission-latency percentiles.
//
// Usage:
//
//	gridload -seed 1 -jobs 500 -arrival bursty -out BENCH_scale.json
//	gridload -mode http -target http://localhost:8080 -jobs 200 -tick 5ms
//	gridload -mode http -target http://localhost:8081 -target http://localhost:8082 -jobs 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/scalereport"
	"repro/internal/workload"
)

// targetList collects repeated -target flags in order.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }

func (t *targetList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty target URL")
	}
	*t = append(*t, v)
	return nil
}

// options collects the parsed flags; run dispatches on mode.
type options struct {
	mode       string
	targets    []string
	seed       uint64
	jobs       int
	arrival    workload.ProcessKind
	spec       workload.ArrivalSpec
	mean       float64
	strategy   string
	priorities int
	domains    int
	queue      int
	burst      int
	proc       int
	workers    int
	placers    int
	tick       time.Duration
	honorRetry bool
	wait       time.Duration
	out        string
}

func main() {
	var targets targetList
	var (
		mode       = flag.String("mode", "inprocess", "inprocess (deterministic, manual-mode service) or http (drive a live daemon)")
		seed       = flag.Uint64("seed", 1, "seed for the environment, job corpus and arrival process")
		jobs       = flag.Int("jobs", 500, "number of jobs to offer")
		arrival    = flag.String("arrival", "poisson", "arrival process: poisson, bursty or diurnal")
		mean       = flag.Float64("mean", 12, "mean inter-arrival time in model ticks (long-run, all processes)")
		onMean     = flag.Float64("on-mean", 0, "bursty: mean on-state sojourn in ticks (0 = 5×mean)")
		offMean    = flag.Float64("off-mean", 0, "bursty: mean off-state sojourn in ticks (0 = 5×mean)")
		period     = flag.Float64("period", 0, "diurnal: sinusoid period in ticks (0 = 40×mean)")
		amplitude  = flag.Float64("amplitude", 0, "diurnal: relative amplitude in [0,1) (0 = 0.8)")
		strategy   = flag.String("strategy", "S1", "strategy family for every job (S1, S2, S3, MS1)")
		priorities = flag.Int("priorities", 3, "cycle submissions through this many priority levels so overload shedding is exercised")
		domains    = flag.Int("domains", 2, "domain count of the generated environment")
		queue      = flag.Int("queue", 64, "admission queue bound")
		burst      = flag.Int("burst", 16, "inprocess: arrivals submitted between scheduling steps")
		proc       = flag.Int("proc", 12, "inprocess: jobs scheduled per step (proc < burst builds overload)")
		workers    = flag.Int("workers", 0, "parallel per-level build workers (0 = sequential, required for determinism diffs)")
		placers    = flag.Int("placers", 0, "inprocess: concurrent optimistic placers per scheduling step (≤1 = classic single-writer placement)")
		tick       = flag.Duration("tick", 5*time.Millisecond, "http: wall-clock duration of one model tick (arrival pacing)")
		honorRetry = flag.Bool("honor-retry-after", true, "http: back off and retry per the Retry-After hint on 429/503")
		wait       = flag.Duration("wait", 60*time.Second, "http: how long to wait for accepted jobs to reach a terminal state")
		out        = flag.String("out", "BENCH_scale.json", "where to write the report artifact")
	)
	flag.Var(&targets, "target", "gridd or gridfront base URL for -mode http (repeatable: submissions round-robin across targets)")
	flag.Parse()
	if len(targets) == 0 {
		targets = targetList{"http://localhost:8080"}
	}

	kind, err := workload.ParseProcess(*arrival)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridload: %v\n", err)
		os.Exit(2)
	}
	o := options{
		mode: *mode, targets: targets, seed: *seed, jobs: *jobs,
		arrival: kind,
		spec: workload.ArrivalSpec{
			Kind: kind, OnMean: *onMean, OffMean: *offMean,
			Period: *period, Amplitude: *amplitude,
		},
		mean: *mean, strategy: *strategy, priorities: *priorities,
		domains: *domains, queue: *queue, burst: *burst, proc: *proc,
		workers: *workers, placers: *placers, tick: *tick, honorRetry: *honorRetry,
		wait: *wait, out: *out,
	}
	rep, err := run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridload: %v\n", err)
		os.Exit(1)
	}
	if err := rep.Write(o.out); err != nil {
		fmt.Fprintf(os.Stderr, "gridload: write %s: %v\n", o.out, err)
		os.Exit(1)
	}
	d, w := rep.Deterministic, rep.Wall
	fmt.Printf("gridload %s/%s: %d offered — accepted=%d completed=%d shed=%d 429=%d drained=%d\n",
		rep.Config.Mode, rep.Config.Arrival, d.Submitted,
		d.Accepted, d.Completed, d.Shed, d.Client429, d.Drained)
	fmt.Printf("  goodput %.2f jobs/ktick (model), %.1f jobs/s (wall %.2fs); admission p50=%.2gs p99=%.2gs; client p99=%.2gs\n",
		d.GoodputPerKTicks, w.GoodputJobsPerSec, w.ElapsedSeconds,
		w.AdmissionP50, w.AdmissionP99, w.ClientP99)
	fmt.Printf("  wrote %s\n", o.out)
}

// run executes one load scenario and assembles the report.
func run(o options) (*scalereport.Report, error) {
	if o.jobs <= 0 {
		return nil, fmt.Errorf("-jobs must be positive")
	}
	if o.priorities < 1 {
		o.priorities = 1
	}
	if o.burst < 1 {
		o.burst = 1
	}
	if o.proc < 0 {
		o.proc = 0
	}
	switch o.mode {
	case "inprocess":
		return runInProcess(o)
	case "http":
		return runHTTP(o)
	default:
		return nil, fmt.Errorf("unknown -mode %q (want inprocess or http)", o.mode)
	}
}

// workloadConfig derives the generator config from the options.
func workloadConfig(o options) workload.Config {
	cfg := workload.Default(o.seed)
	if o.mean > 0 {
		cfg.MeanInterarrival = o.mean
	}
	return cfg
}

// runConfig echoes the scenario shape into the report.
func runConfig(o options) scalereport.RunConfig {
	return scalereport.RunConfig{
		Mode: o.mode, Arrival: o.arrival.String(), Strategy: o.strategy,
		Seed: o.seed, Jobs: o.jobs, QueueCap: o.queue, Domains: o.domains,
		Burst: o.burst, Proc: o.proc, Priorities: o.priorities,
		MeanInterarrival: workloadConfig(o).MeanInterarrival,
		Placers:          o.placers,
	}
}
