package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/jobio"
	"repro/internal/scalereport"
	"repro/internal/service"
	"repro/internal/workload"
)

// submitBody mirrors service.SubmitRequest on the wire.
type submitBody struct {
	jobio.Job
	Strategy string `json:"strategy,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// httpState accumulates results across submitter goroutines.
type httpState struct {
	mu             sync.Mutex
	det            scalereport.Deterministic
	clientLat      []float64
	accepted       map[string]bool
	backoffRetries int
	backoffSeconds float64
}

// targetPool round-robins submissions across the -target fleet and keeps
// per-target Retry-After state: a target that answered 429/503 with a
// hint is skipped until the hint expires, so one overloaded shard or
// router never stalls the offered load to the rest of the fleet.
type targetPool struct {
	mu    sync.Mutex
	urls  []string
	next  int
	until []time.Time // per-target backoff expiry
}

func newTargetPool(urls []string) *targetPool {
	return &targetPool{urls: urls, until: make([]time.Time, len(urls))}
}

// pick returns the round-robin-next target that is not backing off. When
// every target is backing off, it returns the one whose hint expires
// soonest plus how long the caller must wait before using it — with a
// single target this degenerates to the classic sleep-and-retry.
func (p *targetPool) pick(now time.Time) (idx int, wait time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.urls)
	best, bestWait := -1, time.Duration(0)
	for off := 0; off < n; off++ {
		i := (p.next + off) % n
		w := p.until[i].Sub(now)
		if w <= 0 {
			p.next = (i + 1) % n
			return i, 0
		}
		if best < 0 || w < bestWait {
			best, bestWait = i, w
		}
	}
	p.next = (best + 1) % n
	return best, bestWait
}

// setBackoff records a Retry-After hint for one target; hints only ever
// extend the backoff window.
func (p *targetPool) setBackoff(idx int, d time.Duration, now time.Time) {
	p.mu.Lock()
	if u := now.Add(d); u.After(p.until[idx]) {
		p.until[idx] = u
	}
	p.mu.Unlock()
}

func (p *targetPool) url(idx int) string { return p.urls[idx] }

// runHTTP paces the arrival schedule on the wall clock against a live
// daemon: each arrival fires at start + At·tick on its own goroutine, so
// a slow or shedding server never slows the offered load (open loop).
// After the last response the harness waits for accepted jobs to reach a
// terminal state, then reads the server-side counters and scrapes
// /metrics for the admission-latency histogram.
func runHTTP(o options) (*scalereport.Report, error) {
	if len(o.targets) == 0 {
		return nil, fmt.Errorf("-mode http needs at least one -target")
	}
	gen := workload.New(workloadConfig(o))
	flow := gen.FlowWith(o.spec, 0, o.jobs, 0)
	client := &http.Client{Timeout: 30 * time.Second}
	pool := newTargetPool(o.targets)

	m0, err := sumMetrics(client, o.targets)
	if err != nil {
		return nil, err
	}

	st := &httpState{accepted: make(map[string]bool)}
	start := time.Now()
	var wg sync.WaitGroup
	for i, a := range flow {
		due := start.Add(time.Duration(float64(a.At) * float64(o.tick)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, a workload.Arrival) {
			defer wg.Done()
			submitHTTP(o, client, pool, st, i, a)
		}(i, a)
	}
	wg.Wait()

	// Wait for every accepted job to turn terminal (goodput needs the
	// completions, not just the 202s). A job's record lives on whichever
	// target accepted it, so poll the whole fleet and merge.
	deadline := time.Now().Add(o.wait)
	for {
		var recs []service.Record
		for _, target := range o.targets {
			var part []service.Record
			if err := getJSON(client, target+"/v1/jobs", &part); err != nil {
				return nil, fmt.Errorf("poll jobs on %s: %w", target, err)
			}
			recs = append(recs, part...)
		}
		pending := 0
		terminal := map[string]uint64{}
		for _, r := range recs {
			if !st.accepted[r.ID] {
				continue
			}
			if service.Terminal(r.State) {
				terminal[r.State]++
			} else {
				pending++
			}
		}
		if pending == 0 || time.Now().After(deadline) {
			if pending > 0 {
				fmt.Fprintf(os.Stderr, "gridload: %d accepted jobs still pending after %s\n", pending, o.wait)
			}
			st.det.TerminalByState = terminal
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()

	m1, err := sumMetrics(client, o.targets)
	if err != nil {
		return nil, err
	}
	det := st.det
	det.Submitted = m1.Submitted - m0.Submitted
	det.Accepted = m1.Accepted - m0.Accepted
	det.Completed = m1.Completed - m0.Completed
	det.Rejected = m1.Rejected - m0.Rejected
	det.Shed = m1.Shed - m0.Shed
	det.Infeasible = m1.Infeasible - m0.Infeasible
	det.Overloaded = m1.Overloaded - m0.Overloaded
	det.Drained = m1.Drained - m0.Drained
	det.QueueHighWater = m1.QueueHighWater
	det.EngineTicks = m1.EngineNow
	if ticks := m1.EngineNow - m0.EngineNow; ticks > 0 {
		det.GoodputPerKTicks = float64(det.Completed) * 1000 / float64(ticks)
	}

	p50, p95, p99, p999, err := scrapeQueueWait(client, o.targets)
	if err != nil {
		return nil, err
	}
	wall := scalereport.WallClock{
		ElapsedSeconds: elapsed,
		AdmissionP50:   p50, AdmissionP95: p95, AdmissionP99: p99, AdmissionP999: p999,
		ClientP50:      scalereport.Percentile(st.clientLat, 0.5),
		ClientP95:      scalereport.Percentile(st.clientLat, 0.95),
		ClientP99:      scalereport.Percentile(st.clientLat, 0.99),
		ClientP999:     scalereport.Percentile(st.clientLat, 0.999),
		BackoffRetries: st.backoffRetries,
		BackoffSeconds: st.backoffSeconds,
	}
	if elapsed > 0 {
		wall.GoodputJobsPerSec = float64(det.Completed) / elapsed
	}
	return &scalereport.Report{
		Schema:        scalereport.Schema,
		Config:        runConfig(o),
		Deterministic: det,
		Wall:          wall,
	}, nil
}

// submitHTTP posts one job to the next round-robin target, honoring
// per-target Retry-After backoff on 429/503 for up to two retries when
// configured: an overloaded target is marked off-limits until its hint
// expires and the retry goes to the next eligible target, sleeping only
// when the whole fleet is backing off. The recorded client latency spans
// the first POST through the final response, backoff included — that is
// what a well-behaved client actually experiences end to end.
func submitHTTP(o options, client *http.Client, pool *targetPool, st *httpState, i int, a workload.Arrival) {
	wire := jobio.FromJob(a.Job)
	wire.Deadline = int64(a.Job.Deadline - a.At)
	body, err := json.Marshal(submitBody{Job: wire, Strategy: o.strategy, Priority: i % o.priorities})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridload: marshal %s: %v\n", wire.Name, err)
		return
	}
	t0 := time.Now()
	var status int
	var retries int
	var backoff float64
	for {
		idx, wait := pool.pick(time.Now())
		if wait > 0 {
			backoff += wait.Seconds()
			time.Sleep(wait)
		}
		resp, err := client.Post(pool.url(idx)+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridload: post %s: %v\n", wire.Name, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			break
		}
		secs, ok := parseRetryAfter(resp)
		st.mu.Lock()
		if !ok {
			st.det.RetryAfterViolations++
		}
		st.mu.Unlock()
		if !o.honorRetry || retries >= 2 {
			break
		}
		if !ok {
			secs = 1
		}
		pool.setBackoff(idx, time.Duration(secs)*time.Second, time.Now())
		retries++
	}
	lat := time.Since(t0).Seconds()

	st.mu.Lock()
	defer st.mu.Unlock()
	st.clientLat = append(st.clientLat, lat)
	st.backoffRetries += retries
	st.backoffSeconds += backoff
	switch status {
	case http.StatusAccepted:
		st.det.ClientAccepted++
		st.accepted[wire.Name] = true
	case http.StatusTooManyRequests:
		st.det.Client429++
	case http.StatusServiceUnavailable:
		st.det.Client503++
	case http.StatusUnprocessableEntity:
		// Infeasible: counted server-side.
	default:
		fmt.Fprintf(os.Stderr, "gridload: %s: unexpected status %d\n", wire.Name, status)
	}
}

// parseRetryAfter extracts a positive whole-seconds Retry-After hint.
func parseRetryAfter(resp *http.Response) (int, bool) {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		return 0, false
	}
	return secs, true
}

// sumMetrics aggregates the admission counters across the fleet; the
// queue high-water mark takes the fleet maximum and engine ticks sum (the
// goodput denominator is total scheduling work done).
func sumMetrics(client *http.Client, targets []string) (service.Metrics, error) {
	var sum service.Metrics
	for _, target := range targets {
		var m service.Metrics
		if err := getJSON(client, target+"/v1/metrics", &m); err != nil {
			return sum, fmt.Errorf("target %s unreachable: %w", target, err)
		}
		sum.Submitted += m.Submitted
		sum.Accepted += m.Accepted
		sum.Completed += m.Completed
		sum.Rejected += m.Rejected
		sum.Shed += m.Shed
		sum.Infeasible += m.Infeasible
		sum.Overloaded += m.Overloaded
		sum.Drained += m.Drained
		sum.EngineNow += m.EngineNow
		if m.QueueHighWater > sum.QueueHighWater {
			sum.QueueHighWater = m.QueueHighWater
		}
	}
	return sum, nil
}

// getJSON fetches url and decodes the body.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// scrapeQueueWait reads the Prometheus exposition from every target's
// /metrics and estimates the fleet-wide queue-wait percentiles from the
// merged fixed buckets — the same linear-interpolation estimate
// telemetry.Histogram.Quantile computes in process, demonstrating that
// p99 is recoverable from scrape data. Targets without the series (a
// gridfront router runs no admission queue of its own) are skipped, as
// long as at least one target exposes it.
func scrapeQueueWait(client *http.Client, targets []string) (p50, p95, p99, p999 float64, err error) {
	merged := map[float64]uint64{}
	for _, target := range targets {
		resp, err := client.Get(target + "/metrics")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		bounds, cums, err := parseBuckets(string(data), "grid_service_queue_wait_seconds_bucket")
		if err != nil {
			continue
		}
		for i, b := range bounds {
			merged[b] += cums[i]
		}
	}
	if len(merged) == 0 {
		// A fleet with no admission queue anywhere (e.g. only a gridfront
		// router, which queues on its shards, not locally) has no wait
		// histogram to report; zero percentiles, not a failed run.
		return 0, 0, 0, 0, nil
	}
	bounds := make([]float64, 0, len(merged))
	for b := range merged {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	cums := make([]uint64, len(bounds))
	for i, b := range bounds {
		cums[i] = merged[b]
	}
	q := func(p float64) float64 { return finiteOrZero(bucketQuantile(bounds, cums, p)) }
	return q(0.5), q(0.95), q(0.99), q(0.999), nil
}

// parseBuckets extracts a histogram's cumulative buckets from Prometheus
// text format: `name{le="BOUND"} COUNT` lines, +Inf included. Bounds are
// returned ascending with the +Inf bucket last.
func parseBuckets(text, name string) (bounds []float64, cums []uint64, err error) {
	type bkt struct {
		le  float64
		cum uint64
	}
	var bkts []bkt
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		leStart := strings.Index(line, `le="`)
		if leStart < 0 {
			continue
		}
		rest := line[leStart+4:]
		leEnd := strings.Index(rest, `"`)
		if leEnd < 0 {
			continue
		}
		leStr := rest[:leEnd]
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		cum, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: bad count in %q", name, line)
		}
		le := 0.0
		if leStr == "+Inf" {
			le = infBound
		} else if le, err = strconv.ParseFloat(leStr, 64); err != nil {
			return nil, nil, fmt.Errorf("parse %s: bad le in %q", name, line)
		}
		bkts = append(bkts, bkt{le: le, cum: cum})
	}
	if len(bkts) == 0 {
		return nil, nil, fmt.Errorf("no %s series in scrape", name)
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	for _, b := range bkts {
		bounds = append(bounds, b.le)
		cums = append(cums, b.cum)
	}
	return bounds, cums, nil
}

// infBound stands in for +Inf while sorting parsed buckets.
const infBound = 1e308

// bucketQuantile mirrors telemetry.Histogram.Quantile over parsed
// cumulative buckets (bounds ascending, +Inf last as infBound).
func bucketQuantile(bounds []float64, cums []uint64, q float64) float64 {
	n := len(bounds)
	if n == 0 || cums[n-1] == 0 {
		return 0
	}
	total := cums[n-1]
	rank := q * float64(total)
	var prev uint64
	for i := 0; i < n; i++ {
		cum := cums[i]
		if float64(cum) < rank || cum == prev {
			prev = cum
			continue
		}
		upper := bounds[i]
		if upper == infBound {
			if i == 0 {
				return 0
			}
			return bounds[i-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		} else if upper <= 0 {
			lower = upper
		}
		inBucket := float64(cum - prev)
		frac := (rank - float64(prev)) / inBucket
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return bounds[n-1]
}
